//! Global-memory accounting.
//!
//! A lightweight allocator model: the heterogeneous trainer registers the
//! resident factor segments and the in-flight block buffers; exceeding the
//! device capacity is a hard error (a real cuMF run would OOM), which
//! keeps experiment configurations honest.

use std::fmt;

/// Error: an allocation would exceed device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuMemError {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl fmt::Display for GpuMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GPU out of memory: requested {} B with {} / {} B in use",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for GpuMemError {}

/// Tracks global-memory usage of one simulated device.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    capacity: u64,
    in_use: u64,
    high_water: u64,
}

impl GlobalMemory {
    /// A device with `capacity` bytes of global memory.
    pub fn new(capacity: u64) -> GlobalMemory {
        GlobalMemory {
            capacity,
            in_use: 0,
            high_water: 0,
        }
    }

    /// Reserves `bytes`, failing if capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), GpuMemError> {
        if self.in_use + bytes > self.capacity {
            return Err(GpuMemError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.high_water = self.high_water.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if more is freed than is in use (double-free in the caller).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "freeing {bytes} B with only {} B in use",
            self.in_use
        );
        self.in_use -= bytes;
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Peak allocation observed.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Remaining headroom.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_track_usage() {
        let mut mem = GlobalMemory::new(1000);
        mem.alloc(300).unwrap();
        mem.alloc(200).unwrap();
        assert_eq!(mem.in_use(), 500);
        assert_eq!(mem.available(), 500);
        mem.free(300);
        assert_eq!(mem.in_use(), 200);
        assert_eq!(mem.high_water(), 500);
    }

    #[test]
    fn over_allocation_fails_cleanly() {
        let mut mem = GlobalMemory::new(100);
        mem.alloc(80).unwrap();
        let err = mem.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        // The failed allocation must not change state.
        assert_eq!(mem.in_use(), 80);
        mem.alloc(20).unwrap();
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn double_free_panics() {
        let mut mem = GlobalMemory::new(100);
        mem.alloc(10).unwrap();
        mem.free(20);
    }

    #[test]
    fn exact_fill() {
        let mut mem = GlobalMemory::new(64);
        mem.alloc(64).unwrap();
        assert_eq!(mem.available(), 0);
        assert!(mem.alloc(1).is_err());
    }
}
