//! End-to-end adversarial runs: generated seeds and the committed
//! regression corpus, replayed through both execution worlds.

use mf_fuzz::{fuzz_seed, run_io_script, run_script, shrink, Event, IoScript, Script, World};

/// Pinned seeds exercised in both worlds on every test run. The
/// `fuzz_smoke` bench binary covers a much wider random batch.
const PINNED_SEEDS: [u64; 8] = [0, 1, 2, 3, 5, 8, 13, 21];

#[test]
fn pinned_seeds_hold_invariants_in_both_worlds() {
    for &seed in &PINNED_SEEDS {
        if let Err(f) = fuzz_seed(seed) {
            panic!(
                "seed {seed} violated invariants:\n{f}script:\n{}",
                Script::generate(seed)
            );
        }
    }
}

#[test]
fn fresh_seed_batch_holds_invariants_in_virtual_world() {
    // A wider virtual-only sweep: the DES world is cheap enough to run
    // dozens of hostile scenarios per test invocation.
    for seed in 100..140u64 {
        let script = Script::generate(seed);
        if let Err(f) = run_script(&script, World::Virtual, true) {
            panic!("seed {seed} violated invariants:\n{f}script:\n{script}");
        }
    }
}

/// A scripted mid-run GPU death, timed (pass 38) so the device dies
/// *holding work in flight*. With the drain fix on, the lost task is
/// requeued and the CPU side steals its way to full completion; with
/// the fix reverted the pass silently vanishes — and the run still
/// claims success, which is exactly why the monitor audit exists.
fn gpu_death_script() -> Script {
    let script: Script = "hsgd-fuzz v1\n\
                          seed 4242\n\
                          data users=48 items=48 train=2000 test=200\n\
                          sched star nc=2 ng=1 alpha=0.5 steal_ratio=1.0\n\
                          workers nc=2 ng=1\n\
                          iters 2\n\
                          fail gpu0 at=38\n"
        .parse()
        .expect("valid script");
    assert!(script.has_fail());
    script
}

#[test]
fn gpu_death_with_drain_fix_satisfies_invariants() {
    let script = gpu_death_script();
    match run_script(&script, World::Virtual, true) {
        Err(f) => panic!("drain fix on, but:\n{f}"),
        Ok(stats) => assert!(
            !stats.ended_early,
            "drain fix should let the survivors finish the full schedule: {stats:?}"
        ),
    }
    if let Err(f) = run_script(&script, World::ThreadedExclusive, true) {
        panic!("drain fix on (threaded), but:\n{f}");
    }
}

/// The acceptance-gate negative test: with the drain fix reverted, the
/// same scripted GPU death *must* trip the monitor — the dead device's
/// in-flight tasks vanish instead of being requeued, and the audit
/// reports them as lost. This proves the monitor actually detects the
/// bug class the fix exists for.
#[test]
#[should_panic(expected = "lost in flight")]
fn gpu_death_with_drain_fix_reverted_trips_the_monitor() {
    let script = gpu_death_script();
    match run_script(&script, World::Virtual, false) {
        Ok(stats) => {
            panic!("expected a violation with the drain fix reverted, got a clean run: {stats:?}")
        }
        Err(f) => {
            let joined = f.violations.join("; ");
            panic!("{joined}");
        }
    }
}

#[test]
fn shrinking_reduces_to_the_fatal_event() {
    // Pad the failing script with no-op noise events (factor-1 slowdowns
    // change nothing); the shrinker must strip them all and keep exactly
    // the device death.
    let mut script = gpu_death_script();
    script.events.push(Event::Slow {
        dev: "cpu0".parse().unwrap(),
        at: 3,
        factor: 1.0,
    });
    script.events.push(Event::Freeze {
        dev: "gpu0".parse().unwrap(),
        at: 5,
        passes: 4,
        factor: 1.0,
    });
    script.events.push(Event::Slow {
        dev: "cpu1".parse().unwrap(),
        at: 10,
        factor: 1.0,
    });

    let minimal = shrink(&script, |cand| {
        run_script(cand, World::Virtual, false).is_err()
    });
    assert_eq!(
        minimal.events.len(),
        1,
        "expected only the fail event to survive shrinking, got: {:?}",
        minimal.events
    );
    assert!(
        matches!(minimal.events[0], Event::Fail { .. }),
        "surviving event is not the device death: {:?}",
        minimal.events[0]
    );
}

#[test]
fn corpus_scripts_replay_green_in_both_worlds() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("missing corpus dir {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "fz"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fuzz corpus is empty");
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("readable script");
        // Dispatch on the magic line: storage-lifecycle scripts replay
        // through the fault-injected durability harness, scheduler
        // scripts through both execution worlds.
        if text.lines().next().map(str::trim) == Some(IoScript::MAGIC) {
            let script: IoScript = text
                .parse()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            if let Err(f) = run_io_script(&script) {
                panic!("{} failed the durability harness:\n{f}", path.display());
            }
            continue;
        }
        let script: Script = text
            .parse()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for world in [World::Virtual, World::ThreadedExclusive] {
            if let Err(f) = run_script(&script, world, true) {
                panic!("{} failed in {} world:\n{f}", path.display(), world.label());
            }
        }
    }
}
