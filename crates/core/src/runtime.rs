//! The real-thread execution world.
//!
//! [`ThreadedExecutor`] drives the *same* [`BlockScheduler`] instances as
//! the virtual-time trainer — over real OS threads running the
//! monomorphized SoA kernels at hardware speed. Two modes:
//!
//! * [`ExecMode::Exclusive`] — deterministic rounds. The scheduler is
//!   swept once per round (GPUs first, two tasks per GPU — the same
//!   double-buffered in-flight window the DES world models — then CPU
//!   tasks until the frontier is exhausted); the round's tasks execute in
//!   parallel on an `mf-par` pool; then everything is released in sweep
//!   order and RMSE/epoch hooks fire at boundaries. Because each round's
//!   task set depends only on scheduler state (never on thread timing)
//!   and tasks within a round touch disjoint factor rows, the trained
//!   factors are **bit-identical for any worker count** — the real-thread
//!   counterpart of the DES world's reproducibility argument.
//! * [`ExecMode::Relaxed`] — free-running workers, the FPSGD discipline
//!   generalized to heterogeneous devices: `n_c` CPU worker threads and
//!   one thread per GPU pull conflict-free tasks from the shared
//!   scheduler as fast as they finish (GPU threads keep two tasks in
//!   flight). Still race-free — the scheduler's conflict-freedom
//!   invariant is what makes the lock-free factor updates safe — but the
//!   assignment sequence depends on physical timing, so results vary
//!   run to run (like any Hogwild-family trainer). This is the
//!   fast path, and the only mode with **live cost-model feedback**:
//!   per-task wall times stream into `mf-cost` observers and the measured
//!   throughput ratio replaces `StarScheduler`'s calibrated steal
//!   break-even ratio (feedback is inherently timing-driven, which is why
//!   the deterministic mode reports measurements but never feeds them
//!   back mid-run).
//!
//! Probing differs from the virtual-time world by design: exclusive mode
//! probes (and fires epoch hooks, and checks `target_rmse`) at epoch
//! boundaries between rounds, where the model is quiescent and the
//! boundary positions are timing-independent; relaxed mode probes only at
//! baseline and end. `HeteroConfig::probe_interval_secs` is virtual-time
//! only — a wall-clock probe cadence would make results timing-dependent
//! (see the field's docs).
//!
//! Thread sizing follows the process-wide `mf-par` budget: worker counts
//! are clamped to [`mf_par::effective_parallelism`] (`MF_PAR_THREADS`
//! overrides `available_parallelism`), and when the runtime is entered
//! from inside an `mf-par` batch it runs fully inline — no CPU *or* GPU
//! worker threads are spawned — instead of stacking a second level of
//! parallelism on top of the pool.
//!
//! Spill-backed partitions ([`GridPartition::is_spilled`]) run through
//! the same code paths with three additions: every kernel site pins its
//! task's blocks for exactly the duration of the kernel (the
//! pin-while-in-flight protocol — a dispatched block can never be
//! evicted), a [`Prefetcher`] IO thread warms upcoming blocks so loads
//! overlap compute, and relaxed-mode feedback extends to the cache via
//! [`BlockScheduler::observe_io`]. A block that fails its checksum on
//! load aborts the run with a typed panic *before* any kernel touches
//! the bytes. None of this perturbs exclusive-mode round composition,
//! so the bit-determinism contract survives spilling unchanged.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use mf_cost::{balance_alpha, CostModel, ThroughputObserver};
use mf_des::SimTime;
use mf_par::ThreadPool;
use mf_sgd::SharedModel;
use mf_sparse::{GridPartition, SparseMatrix};

use crate::config::HeteroConfig;
use crate::devices::GpuWorker;
use crate::executor::{
    train_with_executor, Device, DeviceHealth, DevicePool, ExecContext, ExecOutcome, Executor,
    HealthCell, MeasuredThroughput, ProbeState, TrainOutcome,
};
use crate::scheduler::{BlockScheduler, Task, WorkerClass};
use crate::spill::Prefetcher;

/// Tasks a GPU worker keeps in flight — matching both the DES world's
/// prefetch window and the `2·n_g` surplus columns of the HSGD\* grid.
pub const GPU_QUEUE_DEPTH: usize = 2;

/// Samples each device class must accumulate before measured rates are
/// fed back into the scheduler (relaxed mode).
pub const FEEDBACK_MIN_SAMPLES: usize = 4;

/// How a [`ThreadedExecutor`] orders task execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic rounds with a barrier: fixed seed ⇒ bit-identical
    /// factors for any worker count.
    Exclusive,
    /// Free-running workers: fastest, race-free, but timing-dependent
    /// like any Hogwild-family trainer.
    Relaxed,
}

/// The real-thread execution world. See the module docs for the two
/// modes.
pub struct ThreadedExecutor<'p> {
    mode: ExecMode,
    feedback: bool,
    pool: Option<&'p ThreadPool>,
    cpu_health: Vec<Arc<HealthCell>>,
}

impl ThreadedExecutor<'static> {
    /// Creates the world in the given mode. Exclusive mode executes
    /// rounds on the process-wide `mf-par` pool; relaxed mode spawns its
    /// own (budget-clamped) workers. Live cost-model feedback defaults to
    /// on for relaxed mode (it has no effect in exclusive mode).
    pub fn new(mode: ExecMode) -> ThreadedExecutor<'static> {
        ThreadedExecutor {
            mode,
            feedback: true,
            pool: None,
            cpu_health: Vec::new(),
        }
    }
}

impl<'p> ThreadedExecutor<'p> {
    /// Exclusive mode on a caller-provided pool — how the determinism
    /// tests pin specific worker counts.
    pub fn with_pool(pool: &'p ThreadPool) -> ThreadedExecutor<'p> {
        ThreadedExecutor {
            mode: ExecMode::Exclusive,
            feedback: true,
            pool: Some(pool),
            cpu_health: Vec::new(),
        }
    }

    /// Enables/disables live measured-throughput feedback into the
    /// scheduler (relaxed mode only; exclusive mode never feeds back —
    /// that would make scheduling timing-dependent).
    pub fn with_feedback(mut self, on: bool) -> ThreadedExecutor<'p> {
        self.feedback = on;
        self
    }

    /// Registers health cells for the CPU worker side (exclusive mode).
    /// Exclusive rounds have no per-CPU-worker identity — the sweep
    /// acquires CPU tasks as a class — so CPU failure takes effect when
    /// *every* registered cell is failed: the sweep then assigns no more
    /// CPU work, mirroring the DES world with all CPU slots dead. GPU
    /// health needs no registration (each [`GpuWorker`] carries its own
    /// cell). Degraded states are ignored here: wall-clock worlds cannot
    /// re-time a real thread.
    pub fn with_cpu_health(mut self, cells: Vec<Arc<HealthCell>>) -> ThreadedExecutor<'p> {
        self.cpu_health = cells;
        self
    }

    /// The mode this world runs in.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }
}

impl Executor for ThreadedExecutor<'_> {
    fn name(&self) -> &'static str {
        match self.mode {
            ExecMode::Exclusive => "real threads (exclusive)",
            ExecMode::Relaxed => "real threads (relaxed)",
        }
    }

    fn execute(&mut self, ctx: ExecContext<'_>) -> ExecOutcome {
        match self.mode {
            ExecMode::Exclusive => run_exclusive(ctx, self.pool, &self.cpu_health),
            ExecMode::Relaxed => run_relaxed(ctx, self.feedback),
        }
    }
}

/// CPU worker threads actually used for a requested count: clamped to the
/// process-wide budget, and forced to 1 when already inside an `mf-par`
/// batch (never oversubscribe when nested).
pub fn effective_cpu_workers(requested: usize) -> usize {
    if requested == 0 {
        return 0;
    }
    if mf_par::in_pool() {
        return 1;
    }
    requested.min(mf_par::effective_parallelism()).max(1)
}

/// Convenience front-end: trains `scheduler` on real threads and returns
/// the outcome, with the measured throughputs in
/// `report.measured`. The same `DevicePool` the virtual trainer takes
/// describes the rig (`gpu_start` is ignored — a DES-only concept);
/// `pool.cpu_workers` is clamped by [`effective_cpu_workers`].
#[allow(clippy::too_many_arguments)]
pub fn run_training_real<S: BlockScheduler + Send>(
    train: &SparseMatrix,
    test: &SparseMatrix,
    scheduler: S,
    pool: DevicePool,
    cfg: &HeteroConfig,
    mode: ExecMode,
    alpha_planned: Option<f64>,
    label: &str,
) -> TrainOutcome {
    let mut exec = ThreadedExecutor::new(mode);
    train_with_executor(
        train,
        test,
        scheduler,
        pool,
        cfg,
        alpha_planned,
        label,
        |_, _| {},
        &mut exec,
    )
}

/// Accumulators shared by both modes.
struct Meter {
    cpu_obs: ThroughputObserver,
    gpu_obs: ThroughputObserver,
    cpu_points: u64,
    gpu_points: u64,
    cpu_busy: f64,
    gpu_busy: f64,
}

impl Meter {
    fn new() -> Meter {
        Meter {
            cpu_obs: ThroughputObserver::new(),
            gpu_obs: ThroughputObserver::new(),
            cpu_points: 0,
            gpu_points: 0,
            cpu_busy: 0.0,
            gpu_busy: 0.0,
        }
    }

    fn record(&mut self, class: WorkerClass, points: usize, secs: f64) {
        match class {
            WorkerClass::Cpu => {
                self.cpu_obs.record(points as f64, secs);
                self.cpu_points += points as u64;
                self.cpu_busy += secs;
            }
            WorkerClass::Gpu(_) => {
                self.gpu_obs.record(points as f64, secs);
                self.gpu_points += points as u64;
                self.gpu_busy += secs;
            }
        }
    }

    /// Builds the end-of-run measurement record. `nc`/`ng` are the worker
    /// counts that actually ran (they normalize the measured α exactly
    /// like Eq. 7 normalizes the planned one).
    fn finish(
        &self,
        wall_secs: f64,
        nc: usize,
        ng: usize,
        total_points: f64,
        final_dynamic_ratio: Option<f64>,
    ) -> MeasuredThroughput {
        let cpu_model = self.cpu_obs.fit_linear();
        let gpu_model = self.gpu_obs.fit_linear();
        let alpha_measured = match (&cpu_model, &gpu_model) {
            (Some(c), Some(g)) if nc > 0 && ng > 0 && total_points > 0.0 => Some(balance_alpha(
                |a| g.time_secs(a * total_points),
                |x| c.time_secs(x * total_points),
                ng as f64,
                nc as f64,
            )),
            _ => None,
        };
        MeasuredThroughput {
            wall_secs,
            cpu_points_per_sec: self.cpu_obs.mean_rate(),
            gpu_points_per_sec: self.gpu_obs.mean_rate(),
            cpu_model,
            gpu_model,
            alpha_measured,
            final_dynamic_ratio,
        }
    }
}

/// Pins a task's blocks before its kernel runs, loading spilled misses.
/// A resident partition makes this free. A load failure (torn frame,
/// checksum mismatch) is fail-closed: the real-thread world cannot
/// un-dispatch a task the way the DES world drains a failed device, so
/// it aborts with the typed error *before* any kernel touches the bytes
/// — factors are never corrupted.
fn pin_for_kernel(part: &GridPartition, task: &Task) {
    if let Err(e) = part.pin_blocks(&task.blocks) {
        panic!("out-of-core block load failed; aborting before the kernel runs: {e}");
    }
}

// ---------------------------------------------------------------------------
// Exclusive mode: deterministic rounds
// ---------------------------------------------------------------------------

/// One round's sweep: GPUs first (up to the prefetch depth each), then
/// CPU tasks until nothing conflict-free is left. Depends only on
/// scheduler state — never on thread timing — which is the heart of the
/// determinism argument. `gpu_alive[g]` / `cpu_alive` exclude failed
/// devices from the sweep: health flips between rounds (deterministic
/// points — failures are applied at release boundaries), so skipping a
/// dead device here is itself deterministic.
fn sweep_round(
    scheduler: &mut (dyn BlockScheduler + Send),
    part: &GridPartition,
    gpu_alive: &[bool],
    cpu_alive: bool,
) -> Vec<(WorkerClass, Task)> {
    let mut tasks = Vec::new();
    for (g, &alive) in gpu_alive.iter().enumerate() {
        if !alive {
            continue;
        }
        let who = WorkerClass::Gpu(g as u32);
        for _ in 0..GPU_QUEUE_DEPTH {
            match scheduler.next_task(who, part) {
                Some(t) => tasks.push((who, t)),
                None => break,
            }
        }
    }
    if cpu_alive {
        while let Some(t) = scheduler.next_task(WorkerClass::Cpu, part) {
            tasks.push((WorkerClass::Cpu, t));
        }
    }
    tasks
}

fn run_exclusive(
    ctx: ExecContext<'_>,
    pool: Option<&ThreadPool>,
    cpu_health: &[Arc<HealthCell>],
) -> ExecOutcome {
    let ExecContext {
        scheduler,
        part,
        model,
        test,
        cfg,
        pool: dev_pool,
        epoch_hook,
    } = ctx;
    // Honor the rig's requested CPU worker count (budget-clamped), so
    // "exclusive at cpu_workers = N" means what it says — e.g. for the
    // bench gate's pinned worker mix. A caller-provided pool (the
    // determinism tests) overrides.
    let own_pool;
    let tpool = match pool {
        Some(p) => p,
        None => {
            own_pool = ThreadPool::new(effective_cpu_workers(dev_pool.cpu_workers).max(1));
            &own_pool
        }
    };
    let nblocks = scheduler.spec().block_count() as u64;
    let mut probes = ProbeState::new(nblocks, cfg.target_rmse);
    let mut meter = Meter::new();
    let ng = dev_pool.gpus.len();
    let gpu_health: Vec<Arc<HealthCell>> =
        dev_pool.gpus.iter().map(|g| g.health_handle()).collect();
    let gpus: Vec<Mutex<GpuWorker>> = dev_pool.gpus.into_iter().map(Mutex::new).collect();
    let hyper = &cfg.hyper;
    let prefetcher = part.spill().map(|h| Prefetcher::spawn(h.clone()));

    let start = Instant::now();
    probes.probe(0.0, model, test);
    let mut stalled = false;

    while !probes.stopped {
        // Health is sampled once per round, at the top: fault injectors
        // flip cells from the release path (between rounds), so the alive
        // set is stable and deterministic for the whole sweep.
        let gpu_alive: Vec<bool> = gpu_health.iter().map(|h| !h.is_failed()).collect();
        let cpu_alive = cpu_health.is_empty() || cpu_health.iter().any(|h| !h.is_failed());
        let tasks = sweep_round(scheduler, part, &gpu_alive, cpu_alive);
        if tasks.is_empty() {
            stalled = scheduler.remaining() > 0;
            break;
        }
        // Hand the whole round to the IO thread in sweep order: it warms
        // blocks while the pool is still chewing the round's first
        // tasks, so later kernels' pins mostly hit. Advisory only — it
        // cannot change which tasks run, so determinism is untouched.
        if let Some(pf) = &prefetcher {
            pf.feed(
                tasks
                    .iter()
                    .flat_map(|(_, t)| t.blocks.iter().map(|&b| part.spec().flat_index(b)))
                    .collect(),
            );
        }

        // Execute the round in parallel. Tasks are pairwise conflict-free
        // (all acquired before any release), so their factor rows are
        // disjoint and the result is independent of which thread runs
        // which task. Results land in per-index slots.
        let mut secs: Vec<f64> = vec![0.0; tasks.len()];
        {
            let shared = SharedModel::new(model);
            let out = mf_par::ScatterSlice::new(&mut secs);
            tpool.run_indexed(tasks.len(), |i| {
                let (class, task) = &tasks[i];
                let gamma = hyper.gamma_at(task.pass);
                // Pin for exactly the kernel's duration. The pin (and
                // any load it implies) happens before the clock starts:
                // measured rates stay pure compute, and IO stalls are
                // visible separately through the cache counters.
                pin_for_kernel(part, task);
                let secs = match class {
                    WorkerClass::Cpu => {
                        let t0 = Instant::now();
                        for &b in &task.blocks {
                            // SAFETY: the scheduler holds this task's row
                            // and column bands busy for the whole round,
                            // and round tasks are pairwise conflict-free.
                            unsafe {
                                shared.sgd_block_exclusive(
                                    part.block(b),
                                    gamma,
                                    hyper.lambda_p,
                                    hyper.lambda_q,
                                );
                            }
                        }
                        t0.elapsed()
                    }
                    WorkerClass::Gpu(g) => {
                        let mut gw = gpus[*g as usize].lock();
                        // Clock starts *after* the device lock: a round can
                        // hold two tasks for the same GPU, and the second's
                        // lock wait is queueing, not device busy time —
                        // counting it would double-charge gpu_busy_secs and
                        // halve the measured GPU rate.
                        let t0 = Instant::now();
                        // SAFETY: same conflict-freedom contract.
                        unsafe {
                            gw.process_shared(SimTime::ZERO, &shared, part, task, gamma, hyper);
                        }
                        t0.elapsed()
                    }
                };
                part.unpin_blocks(&task.blocks);
                // SAFETY: index `i` is written exactly once.
                unsafe { out.write(i, secs.as_secs_f64()) };
            });
        }

        // Release in sweep order (deterministic), account, and fire
        // boundary probes with the model quiescent between rounds.
        for (i, (class, task)) in tasks.iter().enumerate() {
            scheduler.release(task);
            meter.record(*class, task.points, secs[i]);
        }
        probes.at_boundary(
            scheduler.completed(),
            start.elapsed().as_secs_f64(),
            model,
            test,
            epoch_hook,
        );
    }

    let wall = start.elapsed().as_secs_f64();
    let final_rmse = probes.finish(wall, model, test);
    let total_points = (meter.cpu_points + meter.gpu_points) as f64;
    let measured = meter.finish(
        wall,
        tpool.threads(),
        ng,
        total_points,
        scheduler.dynamic_ratio(),
    );
    ExecOutcome {
        end_secs: wall,
        rmse_series: std::mem::take(&mut probes.series),
        time_to_target_secs: probes.time_to_target,
        final_rmse,
        cpu_points: meter.cpu_points,
        gpu_points: meter.gpu_points,
        cpu_busy_secs: meter.cpu_busy,
        gpu_busy_secs: meter.gpu_busy,
        ended_early: probes.stopped || stalled,
        measured: Some(measured),
    }
}

// ---------------------------------------------------------------------------
// Relaxed mode: free-running workers
// ---------------------------------------------------------------------------

/// Scheduler + accounting under the hub lock. Workers hold the lock only
/// for acquire/release bookkeeping; all kernel work runs outside it.
struct HubState<'a, 'b> {
    scheduler: &'b mut (dyn BlockScheduler + Send),
    part: &'a GridPartition,
    meter: Meter,
    /// Tasks currently held by any worker.
    inflight: usize,
    /// Bumped on every release — the only event that can create new
    /// assignable work. A parked worker's "no work for my class" verdict
    /// is valid exactly as long as this generation is unchanged.
    release_gen: u64,
    /// Workers whose no-work verdict is at the current `release_gen`.
    verdicts: usize,
    /// Workers still participating. Starts at the spawn count; a worker
    /// that retires because its device failed decrements it, so the stall
    /// vote needs unanimity only among the survivors.
    active: usize,
    /// Set on global stall or full drain: everyone exits.
    done: bool,
    /// True when the run ended with passes still unassigned.
    stalled: bool,
    feedback: bool,
}

impl HubState<'_, '_> {
    /// Releases a finished task and (optionally) feeds measured rates
    /// back into the scheduler.
    fn release(&mut self, class: WorkerClass, task: &Task, secs: f64) {
        self.scheduler.release(task);
        self.inflight -= 1;
        // New bands are free (and feedback below may move the steal
        // gate): every parked worker's no-work verdict is stale.
        self.release_gen += 1;
        self.verdicts = 0;
        self.meter.record(class, task.points, secs);
        if self.feedback
            && self.meter.cpu_obs.len() >= FEEDBACK_MIN_SAMPLES
            && self.meter.gpu_obs.len() >= FEEDBACK_MIN_SAMPLES
        {
            if let (Some(cpu), Some(gpu)) = (
                self.meter.cpu_obs.mean_rate(),
                self.meter.gpu_obs.mean_rate(),
            ) {
                self.scheduler.observe_throughput(cpu, gpu);
            }
        }
        // Out-of-core runs also feed the cache's behaviour back: the
        // hit rate sets the StarScheduler's IO penalty on the steal
        // break-even depth (a thief stalling on loads is slower than
        // its busy-time rate claims).
        if self.feedback {
            if let Some(handle) = self.part.spill() {
                let c = handle.counters();
                if c.hits + c.misses >= FEEDBACK_MIN_SAMPLES as u64 {
                    self.scheduler
                        .observe_io(c.hit_rate(), c.io_bytes_per_sec());
                }
            }
        }
    }
}

struct Hub<'a, 'b> {
    state: Mutex<HubState<'a, 'b>>,
    cond: Condvar,
}

impl Hub<'_, '_> {
    /// Acquires up to `want` tasks for `who`, blocking when nothing is
    /// assignable yet. Returns an empty vec when the worker should exit:
    /// the budget is drained, or no worker can make progress (stall —
    /// e.g. a region whose owner class has no workers, with stealing
    /// disabled).
    ///
    /// Stall detection is a generation-checked vote, not a parked-worker
    /// count: each worker records a "no work for my class" verdict tagged
    /// with the current release generation, and a stall is declared only
    /// once *every* worker holds a current verdict with nothing in
    /// flight. Acquires can only remove availability and releases reset
    /// the vote, so at that point the scheduler state is frozen and the
    /// verdicts are decisive — a merely-parked worker that has not yet
    /// re-checked after the latest release can never be counted against
    /// newly freed work.
    fn acquire(&self, who: WorkerClass, want: usize) -> Vec<Task> {
        let mut st = self.state.lock();
        // This worker's verdict generation (None = no current verdict).
        let mut verdict_at: Option<u64> = None;
        loop {
            if st.done || st.scheduler.remaining() == 0 {
                st.done = true;
                self.cond.notify_all();
                return Vec::new();
            }
            let part = st.part;
            let mut got = Vec::new();
            while got.len() < want {
                match st.scheduler.next_task(who, part) {
                    Some(t) => got.push(t),
                    None => break,
                }
            }
            if !got.is_empty() {
                st.inflight += got.len();
                return got;
            }
            if verdict_at != Some(st.release_gen) {
                verdict_at = Some(st.release_gen);
                st.verdicts += 1;
                if st.verdicts >= st.active && st.inflight == 0 {
                    // Unanimous current-generation verdicts and nothing in
                    // flight: no release can ever come, so the scheduler
                    // state is frozen with unassignable passes.
                    st.done = true;
                    st.stalled = true;
                    self.cond.notify_all();
                    return Vec::new();
                }
                if st.inflight == 0 {
                    // Freeze candidate: wake the other parked workers so
                    // they re-verify against this generation too.
                    self.cond.notify_all();
                }
            }
            self.cond.wait(&mut st);
        }
    }

    /// Non-blocking acquire: whatever is assignable for `who` right now,
    /// possibly nothing. Used by a GPU worker topping up its prefetch
    /// window while it still holds executable work — it must never park
    /// with work in hand.
    fn try_acquire(&self, who: WorkerClass, want: usize) -> Vec<Task> {
        let mut st = self.state.lock();
        if st.done || st.scheduler.remaining() == 0 {
            return Vec::new();
        }
        let part = st.part;
        let mut got = Vec::new();
        while got.len() < want {
            match st.scheduler.next_task(who, part) {
                Some(t) => got.push(t),
                None => break,
            }
        }
        st.inflight += got.len();
        got
    }

    fn release(&self, class: WorkerClass, task: &Task, secs: f64) {
        {
            let mut st = self.state.lock();
            st.release(class, task, secs);
        }
        // A release frees one row band and one column band, enabling at
        // most a couple of new assignments — baton-pass to one sleeper
        // (it re-notifies after its own acquire), as in FPSGD.
        self.cond.notify_one();
    }

    /// Retires a worker whose device failed: its unstarted local queue is
    /// requeued to the scheduler (the failed-device drain — without it
    /// those tasks' bands stay busy forever and the run hangs), and the
    /// worker leaves the stall vote. Wakes everyone: the requeued work is
    /// newly assignable, and the survivors' quorum shrank.
    fn retire_failed(&self, tasks: Vec<Task>) {
        {
            let mut st = self.state.lock();
            st.inflight -= tasks.len();
            for t in &tasks {
                st.scheduler.requeue(t);
            }
            st.release_gen += 1;
            st.verdicts = 0;
            st.active -= 1;
            if st.active == 0 {
                st.done = true;
                st.stalled = st.scheduler.remaining() > 0;
            }
        }
        self.cond.notify_all();
    }
}

/// One free-running CPU worker.
fn cpu_worker(
    hub: &Hub<'_, '_>,
    shared: &SharedModel<'_>,
    part: &GridPartition,
    cfg: &HeteroConfig,
) {
    let hyper = &cfg.hyper;
    loop {
        let mut got = hub.acquire(WorkerClass::Cpu, 1);
        let Some(task) = got.pop() else { return };
        // A successful acquire may have left more blocks assignable.
        hub.cond.notify_one();
        let gamma = hyper.gamma_at(task.pass);
        pin_for_kernel(part, &task);
        let t0 = Instant::now();
        for &b in &task.blocks {
            // SAFETY: the scheduler marked this task's row and column
            // bands busy; no other worker touches these factor rows until
            // we release.
            unsafe {
                shared.sgd_block_exclusive(part.block(b), gamma, hyper.lambda_p, hyper.lambda_q);
            }
        }
        let secs = t0.elapsed().as_secs_f64();
        part.unpin_blocks(&task.blocks);
        hub.release(WorkerClass::Cpu, &task, secs);
    }
}

/// One free-running GPU worker thread wrapping the simulated device as an
/// async accelerator: it keeps [`GPU_QUEUE_DEPTH`] tasks in flight —
/// acquiring the next task *before* releasing the current one, so the
/// next block's (modeled) H2D transfer overlaps the current kernel and
/// the scheduler sees the same two-column occupancy the DES world and the
/// HSGD\* grid geometry assume — and feeds each completion back to the
/// scheduler as soon as its work is done.
fn gpu_worker(
    hub: &Hub<'_, '_>,
    shared: &SharedModel<'_>,
    part: &GridPartition,
    cfg: &HeteroConfig,
    g: u32,
    worker: &mut GpuWorker,
    prefetcher: Option<&Prefetcher>,
) {
    let hyper = &cfg.hyper;
    let who = WorkerClass::Gpu(g);
    let mut local: std::collections::VecDeque<Task> = std::collections::VecDeque::new();
    loop {
        // Top up the prefetch window. Only block when the window is
        // empty — a worker holding executable tasks must keep executing,
        // not park waiting for more.
        if local.is_empty() {
            let got = hub.acquire(who, GPU_QUEUE_DEPTH);
            if got.is_empty() {
                return;
            }
            hub.cond.notify_one();
            feed_window(prefetcher, part, &got);
            local.extend(got);
        } else if local.len() < GPU_QUEUE_DEPTH {
            let got = hub.try_acquire(who, GPU_QUEUE_DEPTH - local.len());
            if !got.is_empty() {
                hub.cond.notify_one();
            }
            // The same two-deep window that overlaps the *next* task's
            // H2D with the current kernel also overlaps its block load:
            // the IO thread warms the prefetched task's blocks while
            // this one computes.
            feed_window(prefetcher, part, &got);
            local.extend(got);
        }
        // Polled between tasks: a failed device stops here, draining its
        // unstarted prefetch window back to the scheduler instead of
        // holding those bands hostage.
        if matches!(worker.health(), DeviceHealth::Failed) {
            hub.retire_failed(local.drain(..).collect());
            return;
        }
        let Some(task) = local.pop_front() else {
            return;
        };
        let gamma = hyper.gamma_at(task.pass);
        pin_for_kernel(part, &task);
        let t0 = Instant::now();
        // SAFETY: scheduler conflict-freedom for this in-flight task.
        unsafe {
            worker.process_shared(SimTime::ZERO, shared, part, &task, gamma, hyper);
        }
        let secs = t0.elapsed().as_secs_f64();
        part.unpin_blocks(&task.blocks);
        hub.release(who, &task, secs);
    }
}

/// Feeds newly acquired tasks' blocks to the spill prefetch thread (a
/// no-op for in-RAM partitions).
fn feed_window(prefetcher: Option<&Prefetcher>, part: &GridPartition, tasks: &[Task]) {
    if let Some(pf) = prefetcher {
        for t in tasks {
            pf.feed_task(part, t);
        }
    }
}

/// The spawn-free relaxed drive for nested invocations: one loop on the
/// caller thread pulls and immediately executes tasks for every worker
/// class. Semantically a relaxed run with instant completions; measured
/// feedback still applies.
fn run_relaxed_inline(
    scheduler: &mut (dyn BlockScheduler + Send),
    part: &GridPartition,
    model: &mut mf_sgd::Model,
    cfg: &HeteroConfig,
    gpus: &mut [GpuWorker],
    nc: usize,
    feedback: bool,
) -> (Meter, bool) {
    let hyper = &cfg.hyper;
    let mut meter = Meter::new();
    let shared = SharedModel::new(model);
    let maybe_feed = |meter: &Meter, scheduler: &mut (dyn BlockScheduler + Send)| {
        if feedback
            && meter.cpu_obs.len() >= FEEDBACK_MIN_SAMPLES
            && meter.gpu_obs.len() >= FEEDBACK_MIN_SAMPLES
        {
            if let (Some(cpu), Some(gpu)) = (meter.cpu_obs.mean_rate(), meter.gpu_obs.mean_rate()) {
                scheduler.observe_throughput(cpu, gpu);
            }
        }
        if feedback {
            if let Some(handle) = part.spill() {
                let c = handle.counters();
                if c.hits + c.misses >= FEEDBACK_MIN_SAMPLES as u64 {
                    scheduler.observe_io(c.hit_rate(), c.io_bytes_per_sec());
                }
            }
        }
    };
    loop {
        let mut progressed = false;
        for (g, worker) in gpus.iter_mut().enumerate() {
            let who = WorkerClass::Gpu(g as u32);
            // Health is re-polled per task: inline mode has no prefetch
            // window, so a failed GPU simply stops being offered work.
            while !matches!(worker.health(), DeviceHealth::Failed) {
                let Some(task) = scheduler.next_task(who, part) else {
                    break;
                };
                let gamma = hyper.gamma_at(task.pass);
                pin_for_kernel(part, &task);
                let t0 = Instant::now();
                // SAFETY: single-threaded here; the task's bands are ours.
                unsafe {
                    worker.process_shared(SimTime::ZERO, &shared, part, &task, gamma, hyper);
                }
                let secs = t0.elapsed().as_secs_f64();
                part.unpin_blocks(&task.blocks);
                scheduler.release(&task);
                meter.record(who, task.points, secs);
                maybe_feed(&meter, scheduler);
                progressed = true;
            }
        }
        if nc > 0 {
            if let Some(task) = scheduler.next_task(WorkerClass::Cpu, part) {
                let gamma = hyper.gamma_at(task.pass);
                pin_for_kernel(part, &task);
                let t0 = Instant::now();
                for &b in &task.blocks {
                    // SAFETY: single-threaded here; the task's bands are
                    // ours.
                    unsafe {
                        shared.sgd_block_exclusive(
                            part.block(b),
                            gamma,
                            hyper.lambda_p,
                            hyper.lambda_q,
                        );
                    }
                }
                let secs = t0.elapsed().as_secs_f64();
                part.unpin_blocks(&task.blocks);
                scheduler.release(&task);
                meter.record(WorkerClass::Cpu, task.points, secs);
                maybe_feed(&meter, scheduler);
                progressed = true;
            }
        }
        if !progressed {
            return (meter, scheduler.remaining() > 0);
        }
    }
}

fn run_relaxed(ctx: ExecContext<'_>, feedback: bool) -> ExecOutcome {
    let ExecContext {
        scheduler,
        part,
        model,
        test,
        cfg,
        pool: dev_pool,
        epoch_hook: _,
    } = ctx;
    let nblocks = scheduler.spec().block_count() as u64;
    let mut probes = ProbeState::new(nblocks, cfg.target_rmse);
    let nc = effective_cpu_workers(dev_pool.cpu_workers);
    let mut gpus = dev_pool.gpus;
    let ng = gpus.len();
    assert!(nc + ng > 0, "relaxed runtime needs at least one worker");

    let start = Instant::now();
    probes.probe(0.0, model, test);
    // Mid-run probes need exclusive model access; the free-running world
    // has no quiescent point, so target_rmse can only stop a relaxed run
    // at the baseline probe — use exclusive mode when early stopping
    // matters. Epoch hooks are likewise exclusive-mode-only.
    if probes.stopped {
        let wall = start.elapsed().as_secs_f64();
        let final_rmse = probes.finish(wall, model, test);
        return ExecOutcome {
            end_secs: wall,
            rmse_series: std::mem::take(&mut probes.series),
            time_to_target_secs: probes.time_to_target,
            final_rmse,
            cpu_points: 0,
            gpu_points: 0,
            cpu_busy_secs: 0.0,
            gpu_busy_secs: 0.0,
            ended_early: true,
            measured: None,
        };
    }

    let (meter, stalled, final_dynamic_ratio) = if mf_par::in_pool() {
        // Nested inside an mf-par batch: the thread budget is already
        // fully occupied, so spawn *nothing* — not even GPU threads. One
        // inline loop on the caller serves every class (GPUs first,
        // mirroring the DES dispatch priority).
        let (meter, stalled) =
            run_relaxed_inline(scheduler, part, model, cfg, &mut gpus, nc, feedback);
        let ratio = scheduler.dynamic_ratio();
        (meter, stalled, ratio)
    } else {
        let hub = Hub {
            state: Mutex::new(HubState {
                scheduler,
                part,
                meter: Meter::new(),
                inflight: 0,
                release_gen: 0,
                verdicts: 0,
                active: nc + ng,
                done: false,
                stalled: false,
                feedback,
            }),
            cond: Condvar::new(),
        };
        let shared = SharedModel::new(model);
        let prefetcher = part.spill().map(|h| Prefetcher::spawn(h.clone()));
        std::thread::scope(|s| {
            let hub = &hub;
            let shared = &shared;
            let pf = prefetcher.as_ref();
            for (g, worker) in gpus.iter_mut().enumerate() {
                s.spawn(move || gpu_worker(hub, shared, part, cfg, g as u32, worker, pf));
            }
            // The caller is CPU worker 0; spawn the rest.
            for _ in 1..nc {
                s.spawn(move || cpu_worker(hub, shared, part, cfg));
            }
            if nc > 0 {
                cpu_worker(hub, shared, part, cfg);
            }
        });

        let st = hub.state.into_inner();
        let ratio = st.scheduler.dynamic_ratio();
        (st.meter, st.stalled, ratio)
    };

    let wall = start.elapsed().as_secs_f64();
    let final_rmse = probes.finish(wall, model, test);
    let total_points = (meter.cpu_points + meter.gpu_points) as f64;
    let measured = meter.finish(wall, nc, ng, total_points, final_dynamic_ratio);
    ExecOutcome {
        end_secs: wall,
        rmse_series: std::mem::take(&mut probes.series),
        time_to_target_secs: probes.time_to_target,
        final_rmse,
        cpu_points: meter.cpu_points,
        gpu_points: meter.gpu_points,
        cpu_busy_secs: meter.cpu_busy,
        gpu_busy_secs: meter.gpu_busy,
        ended_early: stalled,
        measured: Some(measured),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostModelKind, CpuSpec};
    use crate::layout::{uniform_layout, StarLayout};
    use crate::scheduler::{StarScheduler, UniformScheduler};
    use mf_sgd::{eval, HyperParams};
    use mf_sparse::Rating;

    fn low_rank_data(m: u32, n: u32, seed: u64) -> (SparseMatrix, SparseMatrix) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<[f32; 2]> = (0..m).map(|_| [rng.random(), rng.random()]).collect();
        let b: Vec<[f32; 2]> = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in 0..m {
            for v in 0..n {
                let x: f32 = rng.random();
                if x < 0.7 {
                    let r = 1.0
                        + 2.0
                            * (a[u as usize][0] * b[v as usize][0]
                                + a[u as usize][1] * b[v as usize][1]);
                    if x < 0.6 {
                        train.push(Rating::new(u, v, r));
                    } else {
                        test.push(Rating::new(u, v, r));
                    }
                }
            }
        }
        (
            SparseMatrix::new(m, n, train).unwrap(),
            SparseMatrix::new(m, n, test).unwrap(),
        )
    }

    fn test_cfg(iterations: u32) -> HeteroConfig {
        HeteroConfig {
            hyper: HyperParams {
                k: 8,
                lambda_p: 0.01,
                lambda_q: 0.01,
                gamma: 0.05,
                schedule: mf_sgd::LearningRate::Fixed,
            },
            nc: 4,
            ng: 1,
            gpu: gpu_sim::GpuSpec::default().scaled_down(1000.0),
            cpu: CpuSpec::default(),
            iterations,
            seed: 9,
            dynamic_scheduling: true,
            cost_model: CostModelKind::Tailored,
            probe_interval_secs: None,
            target_rmse: None,
        }
    }

    fn cpu_pool(workers: usize) -> DevicePool {
        DevicePool {
            cpu_workers: workers,
            gpus: vec![],
            gpu_start: vec![],
        }
    }

    #[test]
    fn relaxed_cpu_only_drains_and_converges() {
        let (train, test) = low_rank_data(40, 40, 1);
        let cfg = test_cfg(40);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let out = run_training_real(
            &train,
            &test,
            sched,
            cpu_pool(4),
            &cfg,
            ExecMode::Relaxed,
            None,
            "CPU-Only/real",
        );
        assert_eq!(out.report.total_passes, 20 * 40);
        assert!(
            out.report.final_test_rmse < 0.3,
            "rmse {}",
            out.report.final_test_rmse
        );
        assert_eq!(out.report.gpu_points, 0);
        assert!(out.report.cpu_points > 0);
        assert!(out.report.virtual_secs > 0.0, "wall clock must advance");
        let measured = out.report.measured.expect("real runs report measurements");
        assert!(measured.cpu_points_per_sec.unwrap() > 0.0);
        assert!(measured.gpu_points_per_sec.is_none());
        // RMSE must match an independent evaluation of the returned model.
        assert_eq!(out.report.final_test_rmse, eval::rmse(&out.model, &test));
    }

    #[test]
    fn exclusive_is_bit_deterministic_across_worker_counts() {
        let (train, test) = low_rank_data(36, 36, 2);
        let cfg = test_cfg(6);
        let run_with = |threads: usize| {
            let spec = uniform_layout(&train, 5, 4);
            let sched = UniformScheduler::new(spec, cfg.iterations, true);
            let pool = ThreadPool::new(threads);
            let mut exec = ThreadedExecutor::with_pool(&pool);
            train_with_executor(
                &train,
                &test,
                sched,
                cpu_pool(threads),
                &cfg,
                None,
                "excl",
                |_, _| {},
                &mut exec,
            )
        };
        let one = run_with(1);
        let two = run_with(2);
        let four = run_with(4);
        assert_eq!(one.model, two.model, "1 vs 2 workers must agree bitwise");
        assert_eq!(one.model, four.model, "1 vs 4 workers must agree bitwise");
        // The probe series is identical too (same boundaries, same model
        // states) up to timestamps.
        let strip = |o: &TrainOutcome| -> Vec<f64> {
            o.report.rmse_series.iter().map(|&(_, r)| r).collect()
        };
        assert_eq!(strip(&one), strip(&two));
        assert_eq!(strip(&one), strip(&four));
    }

    #[test]
    fn exclusive_hetero_star_runs_both_classes() {
        let (train, test) = low_rank_data(48, 48, 3);
        let cfg = test_cfg(3);
        let layout = StarLayout::build(&train, 2, 1, 0.4);
        let sched = StarScheduler::new(layout, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![GpuWorker::new(cfg.gpu)],
            gpu_start: vec![],
        };
        let out = run_training_real(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            ExecMode::Exclusive,
            Some(0.4),
            "HSGD*/real-excl",
        );
        assert!(out.report.cpu_points > 0, "CPU must contribute");
        assert!(out.report.gpu_points > 0, "GPU must contribute");
        assert_eq!(out.report.total_passes as usize, {
            let blocks = out.report.update_counts.len();
            blocks * cfg.iterations as usize
        });
        let m = out.report.measured.unwrap();
        assert!(m.gpu_points_per_sec.unwrap() > 0.0);
        assert!(m.final_dynamic_ratio.is_some());
    }

    #[test]
    fn relaxed_hetero_star_with_feedback_drains() {
        let (train, test) = low_rank_data(48, 48, 4);
        let cfg = test_cfg(3);
        let layout = StarLayout::build(&train, 2, 1, 0.5);
        let sched = StarScheduler::new(layout, cfg.iterations, true).with_steal_ratio(1.0);
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![GpuWorker::new(cfg.gpu)],
            gpu_start: vec![],
        };
        let out = run_training_real(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            ExecMode::Relaxed,
            Some(0.5),
            "HSGD*/real",
        );
        assert_eq!(
            out.report.total_passes as usize,
            out.report.update_counts.len() * 3
        );
        // Which class processed how much depends on thread timing (that
        // is what "relaxed" means); the budget being fully drained does
        // not.
        assert!(out.report.cpu_points + out.report.gpu_points > 0);
        let m = out.report.measured.unwrap();
        // Feedback replaced the configured ratio with the measured one
        // (any positive value; equality with 1.0 would be astronomically
        // unlikely from wall clocks).
        let ratio = m.final_dynamic_ratio.unwrap();
        assert!(ratio > 0.0 && ratio.is_finite());
    }

    #[test]
    fn relaxed_detects_stall_instead_of_hanging() {
        // A star layout with dynamic stealing off and no GPU workers: the
        // GPU region can never be drained. The run must end gracefully
        // with the CPU region done and the GPU passes still unassigned.
        let (train, test) = low_rank_data(32, 32, 5);
        let cfg = test_cfg(2);
        let layout = StarLayout::build(&train, 2, 1, 0.5);
        let sched = StarScheduler::new(layout, cfg.iterations, false);
        let out = run_training_real(
            &train,
            &test,
            sched,
            cpu_pool(3),
            &cfg,
            ExecMode::Relaxed,
            None,
            "stall",
        );
        assert!(out.report.cpu_points > 0);
        assert_eq!(out.report.gpu_points, 0);
        // Only the CPU region's passes completed.
        let total: u64 = out.report.update_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.report.total_passes);
    }

    #[test]
    fn relaxed_drains_failed_gpu_window_back_to_scheduler() {
        // The GPU is dead before the run starts: its worker thread still
        // acquires a prefetch window (the scheduler hands out work before
        // health is polled), so the drain path — requeue the window,
        // retire the worker — runs deterministically. The CPU workers
        // must then finish the *entire* budget, GPU region included.
        let (train, test) = low_rank_data(48, 48, 9);
        let cfg = test_cfg(2);
        let layout = StarLayout::build(&train, 2, 1, 0.5);
        let blocks = layout.spec.block_count() as u64;
        let sched = StarScheduler::new(layout, cfg.iterations, true);
        let gpu = GpuWorker::new(cfg.gpu);
        let health = gpu.health_handle();
        health.fail();
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![gpu],
            gpu_start: vec![],
        };
        let out = run_training_real(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            ExecMode::Relaxed,
            None,
            "dead-gpu",
        );
        assert_eq!(out.report.gpu_points, 0, "a dead GPU does no work");
        assert!(out.report.cpu_points > 0);
        assert_eq!(
            out.report.total_passes,
            blocks * cfg.iterations as u64,
            "requeued window must be finished by the survivors"
        );
        let total: u64 = out.report.update_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.report.total_passes);
    }

    #[test]
    fn exclusive_skips_failed_gpu_and_cpu_takes_over() {
        let (train, test) = low_rank_data(48, 48, 10);
        let cfg = test_cfg(2);
        let layout = StarLayout::build(&train, 2, 1, 0.5);
        let blocks = layout.spec.block_count() as u64;
        let sched = StarScheduler::new(layout, cfg.iterations, true);
        let gpu = GpuWorker::new(cfg.gpu);
        gpu.health_handle().fail();
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![gpu],
            gpu_start: vec![],
        };
        let out = run_training_real(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            ExecMode::Exclusive,
            None,
            "dead-gpu-excl",
        );
        assert_eq!(out.report.gpu_points, 0);
        assert_eq!(out.report.total_passes, blocks * cfg.iterations as u64);
    }

    #[test]
    fn exclusive_with_all_cpu_cells_failed_ends_early_not_hanging() {
        use crate::executor::HealthCell;
        use std::sync::Arc;

        let (train, test) = low_rank_data(24, 24, 11);
        let cfg = test_cfg(2);
        let spec = uniform_layout(&train, 3, 3);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let cell = Arc::new(HealthCell::new());
        cell.fail();
        let mut exec =
            ThreadedExecutor::new(ExecMode::Exclusive).with_cpu_health(vec![Arc::clone(&cell)]);
        let out = train_with_executor(
            &train,
            &test,
            sched,
            cpu_pool(2),
            &cfg,
            None,
            "dead-cpus",
            |_, _| {},
            &mut exec,
        );
        assert_eq!(out.report.total_passes, 0, "no live device, no work");
        assert_eq!(out.report.cpu_points + out.report.gpu_points, 0);
    }

    #[test]
    fn exclusive_respects_target_rmse() {
        let (train, test) = low_rank_data(40, 40, 6);
        let mut cfg = test_cfg(200);
        cfg.target_rmse = Some(0.5);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let out = run_training_real(
            &train,
            &test,
            sched,
            cpu_pool(2),
            &cfg,
            ExecMode::Exclusive,
            None,
            "excl-target",
        );
        assert!(out.report.time_to_target_secs.is_some());
        assert!(out.report.total_passes < 20 * 200);
    }

    #[test]
    fn nested_invocation_runs_inline_without_oversubscribing() {
        assert_eq!(effective_cpu_workers(0), 0);
        let budget = mf_par::effective_parallelism();
        assert_eq!(effective_cpu_workers(1), 1);
        assert!(effective_cpu_workers(usize::MAX) <= budget);
        // From inside an mf-par task the runtime must collapse to one
        // worker (and still produce a correct run).
        let pool = ThreadPool::new(2);
        let (train, test) = low_rank_data(24, 24, 7);
        let cfg = test_cfg(2);
        let results: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        pool.run_indexed(2, |_| {
            assert_eq!(effective_cpu_workers(8), 1, "nested must not fan out");
            let spec = uniform_layout(&train, 3, 3);
            let sched = UniformScheduler::new(spec, cfg.iterations, true);
            let out = run_training_real(
                &train,
                &test,
                sched,
                cpu_pool(8),
                &cfg,
                ExecMode::Relaxed,
                None,
                "nested",
            );
            results.lock().push(out.report.total_passes);
        });
        let results = results.into_inner();
        assert_eq!(results, vec![9 * 2, 9 * 2]);
    }

    #[test]
    fn nested_hetero_runs_inline_and_serves_gpus_without_spawning() {
        // With GPUs in the pool, a nested relaxed run must still spawn no
        // threads: the inline loop serves the GPU classes on the caller,
        // so a star scheduler's GPU region drains too.
        let pool = ThreadPool::new(2);
        let (train, test) = low_rank_data(40, 40, 8);
        let cfg = test_cfg(2);
        let total = Mutex::new(Vec::new());
        pool.run_indexed(2, |_| {
            let before = thread_count();
            let layout = StarLayout::build(&train, 2, 1, 0.5);
            let blocks = layout.spec.block_count() as u64;
            let sched = StarScheduler::new(layout, cfg.iterations, true);
            let out = run_training_real(
                &train,
                &test,
                sched,
                DevicePool {
                    cpu_workers: 4,
                    gpus: vec![GpuWorker::new(cfg.gpu)],
                    gpu_start: vec![],
                },
                &cfg,
                ExecMode::Relaxed,
                None,
                "nested-hetero",
            );
            assert_eq!(
                thread_count(),
                before,
                "nested relaxed run must not spawn any thread"
            );
            assert!(out.report.gpu_points > 0, "inline loop must serve GPUs");
            total.lock().push((out.report.total_passes, blocks));
        });
        for (passes, blocks) in total.into_inner() {
            assert_eq!(passes, blocks * cfg.iterations as u64);
        }
    }

    /// Live threads of this process (Linux procfs; fine for tests).
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task").map_or(0, |d| d.count())
    }
}
