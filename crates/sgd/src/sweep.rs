//! Serving-side sweep micro-kernels: many queries × many item rows.
//!
//! Training's [`crate::kernel`] is one-pair-at-a-time — exactly right for
//! SGD, exactly wrong for batched top-k serving, where the hot loop wants
//! to stream each item tile through the core **once per query batch**
//! instead of once per query. This module provides that GEMM-shaped
//! primitive: [`dot_panel`] scores a *panel* of up to [`PANEL_W`] query
//! factors against a run of item rows in a single pass over the rows.
//!
//! Two properties drive the design:
//!
//! * **Bit-identity.** Each per-query dot must equal
//!   [`kernel::dot`](crate::kernel::dot) *bit for bit*, because
//!   `mf-serve` promises batched answers identical to the serial scan
//!   (and, transitively, to `Model::recommend`). The panel kernel
//!   therefore replicates the monomorphized kernel's exact association
//!   order — [`LANES`] split accumulators seeded with the first chunk's
//!   products, then the same fixed reduction tree — just *vectorized
//!   across queries* instead of across the latent dimension: lane `l`'s
//!   partial sum for query `w` sees the same operands in the same order
//!   as `dot_mono`'s `acc[l]`, and the final tree reduce becomes
//!   [`PANEL_W`]-wide vector adds with no horizontal step at all. For
//!   dimensions without a monomorphized kernel the fallback reproduces
//!   `dot_scalar`'s sequential left-to-right sum per query.
//! * **Runtime ISA dispatch.** The workspace builds for baseline x86-64
//!   (SSE2). A batched sweep is compute-bound, so the panel kernel runs
//!   on the [`crate::simd`] dispatch ladder — explicit AVX-512F / AVX2
//!   intrinsic kernels behind a one-time `is_x86_feature_detected!`
//!   probe (`MF_SIMD`-overridable), with `dot_panel_body` as the
//!   portable level. The wider kernels change *throughput only*: every
//!   level performs the same scalar IEEE multiplies and adds in the
//!   same order, so the bits never depend on the machine. (`fma` is
//!   deliberately **never used** in a dot: fused multiply-add contracts
//!   `a*b + c` into one differently-rounded op, which would break
//!   bit-identity with the training kernel.)
//!
//! The panel layout is column-major — `panel[j * PANEL_W + w]` holds
//! coordinate `j` of query `w` — so the inner loop broadcasts one item
//! coordinate against a contiguous 16-query vector. At `PANEL_W = 16`
//! one accumulator row is exactly one AVX-512 register (or two AVX2
//! registers), and the whole `LANES × PANEL_W` accumulator block stays
//! register-resident through a row.
//!
//! [`total_key`] / [`panel_max_keys`] support the consumer's top-k
//! maintenance: a monotone integer image of `f32::total_cmp` lets the
//! serving sweep reject a whole chunk of scores per query with a single
//! integer compare against the query's current k-th best.

use crate::kernel::{dispatch_k, LANES};

/// Queries per panel. 16 f32 lanes = one AVX-512 register (two AVX2),
/// so the `LANES × PANEL_W` accumulator block is 8 zmm / 16 ymm
/// registers — the whole register file, none spilled.
pub const PANEL_W: usize = 16;

/// Packs up to [`PANEL_W`] query factor vectors (each of length `k`)
/// into a column-major panel, zero-filling unused lanes. Zero lanes
/// produce all-zero scores and cost nothing extra — the kernel always
/// runs all [`PANEL_W`] lanes.
///
/// # Panics
///
/// Panics if more than [`PANEL_W`] queries are given or any factor has
/// length ≠ `k`.
pub fn pack_panel(queries: &[&[f32]], k: usize, panel: &mut Vec<f32>) {
    assert!(
        queries.len() <= PANEL_W,
        "panel holds at most {PANEL_W} queries, got {}",
        queries.len()
    );
    panel.clear();
    panel.resize(k * PANEL_W, 0.0);
    for (w, q) in queries.iter().enumerate() {
        assert_eq!(q.len(), k, "query {w} has wrong dimension");
        for j in 0..k {
            panel[j * PANEL_W + w] = q[j];
        }
    }
}

/// Scores a packed query panel against `rows.len() / k` item rows:
/// `out[i * PANEL_W + w] = panel-query w · row i`, bit-identical per
/// query to [`crate::kernel::dot`] on the same pair.
///
/// `panel` must be `k × PANEL_W` (see [`pack_panel`]), `rows` a
/// row-major `n × k` run of item factors, `out` an `n × PANEL_W`
/// scratch. Dispatches per call: monomorphized + ISA-specialized for
/// the [`crate::kernel::MONO_DIMS`] dimensions, a scalar-order fallback for
/// the rest.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent or `k == 0`.
pub fn dot_panel(panel: &[f32], k: usize, rows: &[f32], out: &mut [f32]) {
    dot_panel_at(crate::simd::level(), panel, k, rows, out)
}

/// [`dot_panel`] pinned to a SIMD dispatch level (clamped to the host)
/// — the test surface for exercising every reachable level in one
/// process. All levels produce the same bits per query lane; only
/// throughput differs.
///
/// # Panics
///
/// Panics under the same conditions as [`dot_panel`].
pub fn dot_panel_at(
    level: crate::simd::SimdLevel,
    panel: &[f32],
    k: usize,
    rows: &[f32],
    out: &mut [f32],
) {
    assert!(k > 0, "k must be positive");
    assert_eq!(panel.len(), k * PANEL_W, "panel must be k × PANEL_W");
    assert!(rows.len().is_multiple_of(k), "rows must be n × k");
    let n = rows.len() / k;
    assert_eq!(out.len(), n * PANEL_W, "out must be n × PANEL_W");
    dispatch_k!(
        k,
        dot_panel_level_k(level, panel, rows, out),
        dot_panel_any(panel, k, rows, out)
    )
}

/// Monomorphized adapter over [`crate::simd::dot_panel_level`] for the
/// dispatch macro.
#[inline(always)]
fn dot_panel_level_k<const K: usize>(
    level: crate::simd::SimdLevel,
    panel: &[f32],
    rows: &[f32],
    out: &mut [f32],
) {
    crate::simd::dot_panel_level::<K>(level, panel, rows, out)
}

/// The portable kernel body — the scalar level of the SIMD dispatch in
/// [`crate::simd::dot_panel_level`], and the oracle the explicit
/// AVX2/AVX-512 panel kernels are pinned against.
///
/// Per query `w` this performs *exactly* `dot_mono`'s arithmetic:
/// `acc[l]` is seeded with chunk-0 products and accumulates chunk by
/// chunk, and the final reduction uses the same fixed tree — only the
/// iteration is restructured so each scalar of `acc` lives in a vector
/// register shared with 15 other queries.
#[inline(always)]
pub(crate) fn dot_panel_body<const K: usize>(panel: &[f32], rows: &[f32], out: &mut [f32]) {
    const { assert!(K.is_multiple_of(LANES) && K > 0) };
    let n = out.len() / PANEL_W;
    for i in 0..n {
        let row: &[f32; K] = rows[i * K..(i + 1) * K]
            .try_into()
            .expect("caller checked lengths");
        let mut acc = [[0f32; PANEL_W]; LANES];
        // Seed with the first chunk's products (dot_mono's zero-add
        // elision), vectorized across the panel.
        for l in 0..LANES {
            let col = &panel[l * PANEL_W..(l + 1) * PANEL_W];
            let r = row[l];
            for w in 0..PANEL_W {
                acc[l][w] = col[w] * r;
            }
        }
        let mut j = LANES;
        while j < K {
            for l in 0..LANES {
                let col = &panel[(j + l) * PANEL_W..(j + l + 1) * PANEL_W];
                let r = row[j + l];
                for w in 0..PANEL_W {
                    acc[l][w] += col[w] * r;
                }
            }
            j += LANES;
        }
        let o = &mut out[i * PANEL_W..(i + 1) * PANEL_W];
        for w in 0..PANEL_W {
            // dot_mono's exact reduction tree, per panel lane.
            o[w] = ((acc[0][w] + acc[4][w]) + (acc[1][w] + acc[5][w]))
                + ((acc[2][w] + acc[6][w]) + (acc[3][w] + acc[7][w]));
        }
    }
}

/// Fallback for dimensions without a monomorphized kernel: per query,
/// the same sequential left-to-right sum as [`kernel::dot_scalar`]
/// (including its `0.0 +` seed, so even a leading `-0.0` product
/// matches bitwise).
fn dot_panel_any(panel: &[f32], k: usize, rows: &[f32], out: &mut [f32]) {
    let n = out.len() / PANEL_W;
    for i in 0..n {
        let row = &rows[i * k..(i + 1) * k];
        let o = &mut out[i * PANEL_W..(i + 1) * PANEL_W];
        for (w, slot) in o.iter_mut().enumerate() {
            let mut s = 0.0f32;
            for (j, &r) in row.iter().enumerate() {
                s += panel[j * PANEL_W + w] * r;
            }
            *slot = s;
        }
    }
}

/// A monotone `i32` image of [`f32::total_cmp`]:
/// `total_key(a) < total_key(b)  ⇔  a.total_cmp(&b) == Less`. Flipping
/// the payload bits of negative floats turns the IEEE sign-magnitude
/// encoding into two's complement, so ordinary integer compares — and
/// SIMD integer max — realize the total order, NaNs and signed zeros
/// included.
#[inline]
pub fn total_key(x: f32) -> i32 {
    let b = x.to_bits() as i32;
    b ^ (((b >> 31) as u32) >> 1) as i32
}

/// Per-query maximum [`total_key`] over a score chunk laid out like
/// [`dot_panel`]'s output (`scores[i * PANEL_W + w]`). A top-k consumer
/// compares `keys[w]` against the key of query `w`'s current k-th best
/// score: if not greater, *no* score in the chunk can displace anything
/// — the whole chunk is skipped for that query without touching the
/// heap. Runs on the same runtime-dispatched ISA tiers as the dot
/// kernel (integer max vectorizes across the panel).
///
/// # Panics
///
/// Panics if `scores.len()` is not a multiple of [`PANEL_W`].
pub fn panel_max_keys(scores: &[f32], keys: &mut [i32; PANEL_W]) {
    assert!(
        scores.len().is_multiple_of(PANEL_W),
        "scores must be n × PANEL_W"
    );
    match isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa()` returned this variant only after runtime
        // feature detection.
        Isa::Avx512 => unsafe { x86::panel_max_keys_avx512(scores, keys) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Isa::Avx2 => unsafe { x86::panel_max_keys_avx2(scores, keys) },
        Isa::Baseline => panel_max_keys_body(scores, keys),
    }
}

/// Shared body of [`panel_max_keys`] (same multi-versioning scheme as
/// [`dot_panel_body`]).
#[inline(always)]
fn panel_max_keys_body(scores: &[f32], keys: &mut [i32; PANEL_W]) {
    *keys = [i32::MIN; PANEL_W];
    for chunk in scores.chunks_exact(PANEL_W) {
        for w in 0..PANEL_W {
            keys[w] = keys[w].max(total_key(chunk[w]));
        }
    }
}

/// Which vector tier the one-time probe picked (exposed for bench
/// reporting, not for correctness — all tiers produce the same bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// AVX-512F: 16-wide f32, one register per accumulator row.
    Avx512,
    /// AVX2: 8-wide f32, two registers per accumulator row.
    Avx2,
    /// Whatever the build targets (SSE2 on x86-64).
    Baseline,
}

impl Isa {
    /// Human-readable tier name.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512f",
            Isa::Avx2 => "avx2",
            Isa::Baseline => "baseline",
        }
    }
}

/// The vector tier serving sweeps run on — the [`crate::simd`] dispatch
/// level (detected once per process, `MF_SIMD`-overridable) mapped onto
/// the serving-facing tier names.
pub fn isa() -> Isa {
    match crate::simd::level() {
        crate::simd::SimdLevel::Avx512 => Isa::Avx512,
        crate::simd::SimdLevel::Avx2 => Isa::Avx2,
        crate::simd::SimdLevel::Scalar => Isa::Baseline,
    }
}

/// The `#[target_feature]` re-compilations of the integer-max body.
/// Safe fns: the feature contract is discharged by `isa()`'s runtime
/// probe (via [`crate::simd::level`], which clamps to detection) at the
/// (unsafe) call sites. The dot-panel SIMD variants live in
/// [`crate::simd`] as explicit-intrinsic kernels; the dword max
/// autovectorizes perfectly, so multi-versioning the portable body is
/// all it needs.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;

    /// [`panel_max_keys_body`] compiled for AVX-512F (dword max needs
    /// avx512f only).
    #[target_feature(enable = "avx512f")]
    pub fn panel_max_keys_avx512(scores: &[f32], keys: &mut [i32; PANEL_W]) {
        panel_max_keys_body(scores, keys)
    }

    /// [`panel_max_keys_body`] compiled for AVX2.
    #[target_feature(enable = "avx2")]
    pub fn panel_max_keys_avx2(scores: &[f32], keys: &mut [i32; PANEL_W]) {
        panel_max_keys_body(scores, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel;
    use std::cmp::Ordering;

    /// Deterministic pseudo-random f32s with sign variety, no NaNs.
    fn noise(seed: u32, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(2654435761).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn check_panel_matches_dot(k: usize, n: usize, seed: u32) {
        let qs: Vec<Vec<f32>> = (0..PANEL_W).map(|w| noise(seed + w as u32, k)).collect();
        let refs: Vec<&[f32]> = qs.iter().map(|q| q.as_slice()).collect();
        let rows = noise(seed ^ 0xbeef, n * k);
        let mut panel = Vec::new();
        pack_panel(&refs, k, &mut panel);
        let mut out = vec![0f32; n * PANEL_W];
        dot_panel(&panel, k, &rows, &mut out);
        for i in 0..n {
            for (w, q) in qs.iter().enumerate() {
                let expect = kernel::dot(q, &rows[i * k..(i + 1) * k]);
                let got = out[i * PANEL_W + w];
                assert_eq!(
                    got.to_bits(),
                    expect.to_bits(),
                    "k={k} i={i} w={w}: panel {got} vs dot {expect}"
                );
            }
        }
    }

    #[test]
    fn panel_matches_kernel_dot_bitwise_mono_dims() {
        for &k in &kernel::MONO_DIMS {
            for n in [1usize, 7, 64, 130] {
                check_panel_matches_dot(k, n, 11 + k as u32);
            }
        }
    }

    #[test]
    fn panel_matches_kernel_dot_bitwise_fallback_dims() {
        for k in [1usize, 3, 12, 24, 100] {
            check_panel_matches_dot(k, 33, 7 + k as u32);
        }
    }

    #[test]
    fn panel_handles_nan_and_signed_zero_like_dot() {
        let k = 32;
        let mut q0 = noise(5, k);
        q0[3] = f32::NAN;
        let q1 = vec![-0.0f32; k];
        let refs: Vec<&[f32]> = vec![&q0, &q1];
        let mut rows = noise(6, 4 * k);
        rows[2 * k] = f32::NAN;
        let mut panel = Vec::new();
        pack_panel(&refs, k, &mut panel);
        let mut out = vec![0f32; 4 * PANEL_W];
        dot_panel(&panel, k, &rows, &mut out);
        for i in 0..4 {
            for (w, q) in [&q0, &q1].iter().enumerate() {
                let expect = kernel::dot(q, &rows[i * k..(i + 1) * k]);
                assert_eq!(out[i * PANEL_W + w].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn padded_lanes_score_zero() {
        let k = 16;
        let q = noise(9, k);
        let refs: Vec<&[f32]> = vec![&q];
        let rows = noise(10, 3 * k);
        let mut panel = Vec::new();
        pack_panel(&refs, k, &mut panel);
        let mut out = vec![1f32; 3 * PANEL_W];
        dot_panel(&panel, k, &rows, &mut out);
        for i in 0..3 {
            for w in 1..PANEL_W {
                assert_eq!(out[i * PANEL_W + w], 0.0, "i={i} w={w}");
            }
        }
    }

    #[test]
    fn total_key_realizes_total_cmp() {
        let vals = [
            f32::NEG_INFINITY,
            -1e30,
            -1.0,
            -1e-40, // subnormal
            -0.0,
            0.0,
            1e-40,
            1.0,
            1e30,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
            f32::from_bits(0x7f80_0001), // smallest-payload NaN
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    total_key(a).cmp(&total_key(b)),
                    a.total_cmp(&b),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }

    #[test]
    fn max_keys_match_scalar_fold() {
        let n = 37;
        let mut scores = noise(21, n * PANEL_W);
        scores[5 * PANEL_W + 2] = f32::NAN;
        scores[7 * PANEL_W + 9] = f32::NEG_INFINITY;
        let mut keys = [0i32; PANEL_W];
        panel_max_keys(&scores, &mut keys);
        for w in 0..PANEL_W {
            let expect = (0..n)
                .map(|i| total_key(scores[i * PANEL_W + w]))
                .max()
                .unwrap();
            assert_eq!(keys[w], expect, "w={w}");
        }
        // A chunk-max key not greater than a query's current-worst key
        // proves no score in the chunk beats it under total_cmp.
        for w in 0..PANEL_W {
            for i in 0..n {
                let s = scores[i * PANEL_W + w];
                if total_key(s) > keys[w] {
                    panic!("max key missed a score");
                }
                assert_ne!(s.total_cmp(&f32::NAN), Ordering::Greater);
            }
        }
    }

    #[test]
    fn empty_rows_are_fine() {
        let k = 8;
        let q = noise(3, k);
        let refs: Vec<&[f32]> = vec![&q];
        let mut panel = Vec::new();
        pack_panel(&refs, k, &mut panel);
        let mut out: Vec<f32> = Vec::new();
        dot_panel(&panel, k, &[], &mut out);
        assert!(out.is_empty());
    }
}
