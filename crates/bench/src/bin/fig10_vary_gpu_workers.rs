//! Figure 10 — running time while varying GPU parallel workers (32–512),
//! for CPU-Only, GPU-Only and HSGD\* on all four datasets.
//!
//! The shape to reproduce: CPU-Only flat; GPU-Only starts slower than
//! CPU-Only at 32 workers and overtakes as workers grow; HSGD\* fastest
//! (or tied with GPU-Only once the GPU utterly dominates).

use hsgd_core::{experiments, Algorithm};
use mf_bench::{fmt_secs, print_table, BenchArgs};
use mf_data::PresetName;

fn main() {
    let args = BenchArgs::parse();
    let worker_sweep = [32u32, 64, 128, 256, 512];

    for name in PresetName::all() {
        let (p, ds) = args.dataset(name);
        let scale = args.scale_for(name);

        // CPU-Only doesn't depend on GPU workers: run once.
        let cfg0 = args.rig(&p, scale);
        let cpu_time = experiments::run(Algorithm::CpuOnly, &ds.train, &ds.test, &cfg0)
            .report
            .virtual_secs;

        let mut rows = Vec::new();
        for &w in &worker_sweep {
            let mut wargs = args.clone();
            wargs.workers = w;
            let cfg = wargs.rig(&p, scale);
            let gpu = experiments::run(Algorithm::GpuOnly, &ds.train, &ds.test, &cfg)
                .report
                .virtual_secs;
            let star = experiments::run(Algorithm::HsgdStar, &ds.train, &ds.test, &cfg).report;
            rows.push(vec![
                w.to_string(),
                fmt_secs(cpu_time),
                fmt_secs(gpu),
                fmt_secs(star.virtual_secs),
                format!("{:.2}", star.alpha_planned.unwrap_or(0.0)),
            ]);
        }
        print_table(
            &format!(
                "Fig. 10 — {} (scale 1/{scale}, {} iters, nc={}): time vs GPU workers",
                p.generator.name, args.iterations, args.nc
            ),
            &["workers", "CPU-Only", "GPU-Only", "HSGD*", "alpha"],
            &rows,
        );
    }
}
