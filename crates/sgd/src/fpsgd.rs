//! FPSGD — fast parallel SGD in shared memory (Zhuang et al., RecSys'13 —
//! paper \[9\]). This is the paper's **CPU-Only** baseline, implemented on
//! real threads.
//!
//! The rating matrix is divided into a uniform grid; each worker thread
//! repeatedly asks a scheduler for a *free* block — one whose row band and
//! column band are not being processed by any other worker — with the
//! smallest update count (keeping per-block pass counts balanced). Blocks
//! sharing a row band update the same rows of `P`, and blocks sharing a
//! column band the same rows of `Q`; the independence rule is exactly what
//! makes the lock-free factor updates safe (see
//! [`crate::shared::SharedModel::sgd_block_exclusive`]).

use parking_lot::{Condvar, Mutex};

use mf_sparse::{BlockOrder, FreeBlockPool, GridPartition, GridSpec, SparseMatrix};

use crate::model::Model;
use crate::sequential::TrainConfig;
use crate::shared::SharedModel;

/// FPSGD-specific configuration.
#[derive(Debug, Clone, Copy)]
pub struct FpsgdConfig {
    /// Shared training options (hyper-parameters, iterations, seed).
    pub train: TrainConfig,
    /// Number of worker threads (the paper's `nc`).
    pub threads: usize,
    /// Grid shape `(rows, cols)`. Defaults to `(threads + 1, threads)` —
    /// Rule 1 with `ng = 0` — which guarantees an idle worker always finds
    /// a free block.
    pub grid: Option<(u32, u32)>,
}

impl FpsgdConfig {
    /// Default configuration for `threads` workers.
    pub fn new(threads: usize) -> FpsgdConfig {
        FpsgdConfig {
            train: TrainConfig::default(),
            threads,
            grid: None,
        }
    }

    fn grid_shape(&self) -> (u32, u32) {
        self.grid
            .unwrap_or((self.threads as u32 + 1, self.threads.max(1) as u32))
    }
}

/// What happened during a run: per-block pass counts and grid geometry.
/// The update-count spread is the statistic behind the paper's Example 3.
#[derive(Debug, Clone)]
pub struct FpsgdReport {
    /// Pass count per block (row-major).
    pub update_counts: Vec<u32>,
    /// Grid rows.
    pub grid_rows: u32,
    /// Grid columns.
    pub grid_cols: u32,
    /// Total block passes executed.
    pub total_passes: u64,
}

/// Scheduler state under the mutex: the incremental free-block pool plus
/// the global pass budget. Picking the least-updated conflict-free block
/// is amortized O(log B) (see [`FreeBlockPool`]) instead of the naive
/// O(rows × cols) grid scan, so the critical section is bookkeeping only.
struct Sched {
    pool: FreeBlockPool,
    /// Block passes not yet assigned.
    remaining: u64,
}

/// Trains with FPSGD and returns the model.
pub fn train(data: &SparseMatrix, cfg: &FpsgdConfig) -> Model {
    train_with_report(data, cfg).0
}

/// Trains with FPSGD, also returning scheduling statistics.
pub fn train_with_report(data: &SparseMatrix, cfg: &FpsgdConfig) -> (Model, FpsgdReport) {
    assert!(cfg.threads > 0, "need at least one worker");
    let (rows, cols) = cfg.grid_shape();
    let spec = GridSpec::uniform(data.nrows(), data.ncols(), rows, cols);
    let part = GridPartition::build_with_order(data, spec, BlockOrder::UserMajor);
    let mut model = Model::init_for_ratings(
        data.nrows(),
        data.ncols(),
        cfg.train.hyper.k,
        cfg.train.seed,
        data.mean_rating(),
    );

    let nblocks = (rows * cols) as usize;
    let target = cfg.train.iterations;
    let sched = Mutex::new(Sched {
        pool: FreeBlockPool::new(rows, cols, Some(target)),
        remaining: nblocks as u64 * target as u64,
    });
    let cond = Condvar::new();
    let shared = SharedModel::new(&mut model);
    let hyper = cfg.train.hyper;

    std::thread::scope(|s| {
        for _ in 0..cfg.threads {
            let sched = &sched;
            let cond = &cond;
            let part = &part;
            let shared = &shared;
            s.spawn(move || loop {
                // Acquire a block (or learn that the run is over).
                let (id, pass) = {
                    let mut st = sched.lock();
                    loop {
                        if st.remaining == 0 {
                            // Run over: every sleeper must wake to exit.
                            cond.notify_all();
                            return;
                        }
                        if let Some((id, pass)) = st.pool.acquire() {
                            st.remaining -= 1;
                            break (id, pass);
                        }
                        cond.wait(&mut st);
                    }
                };
                // A successful acquire may have left a second block
                // assignable (the bands just taken don't cover the whole
                // frontier); pass the baton to one sleeper instead of
                // waking the herd.
                cond.notify_one();
                // Process it outside the lock. SAFETY: the scheduler marked
                // this block's row and column bands busy, so no other worker
                // touches the same factor rows until we release them.
                let gamma = hyper.gamma_at(pass);
                unsafe {
                    shared.sgd_block_exclusive(
                        part.block(id),
                        gamma,
                        hyper.lambda_p,
                        hyper.lambda_q,
                    );
                }
                // Release, then wake exactly one waiter: a single release
                // frees one row band and one column band, which can enable
                // at most a couple of new assignments — the woken worker
                // re-notifies after its own acquire (baton passing), so no
                // assignable block is ever stranded.
                {
                    let mut st = sched.lock();
                    st.pool.release(id);
                }
                cond.notify_one();
            });
        }
    });

    let st = sched.into_inner();
    let update_counts = st.pool.counts().to_vec();
    let total: u64 = update_counts.iter().map(|&c| c as u64).sum();
    (
        model,
        FpsgdReport {
            update_counts,
            grid_rows: rows,
            grid_cols: cols,
            total_passes: total,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use crate::hyper::HyperParams;
    use mf_sparse::Rating;

    fn low_rank_data(m: u32, n: u32, seed: u64) -> SparseMatrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<[f32; 2]> = (0..m).map(|_| [rng.random(), rng.random()]).collect();
        let b: Vec<[f32; 2]> = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let mut entries = Vec::new();
        for u in 0..m {
            for v in 0..n {
                if rng.random::<f32>() < 0.5 {
                    let r = 1.0
                        + 2.0
                            * (a[u as usize][0] * b[v as usize][0]
                                + a[u as usize][1] * b[v as usize][1]);
                    entries.push(Rating::new(u, v, r));
                }
            }
        }
        SparseMatrix::new(m, n, entries).unwrap()
    }

    fn cfg(threads: usize, iterations: u32) -> FpsgdConfig {
        FpsgdConfig {
            train: TrainConfig {
                hyper: HyperParams {
                    k: 8,
                    lambda_p: 0.01,
                    lambda_q: 0.01,
                    gamma: 0.05,
                    schedule: crate::LearningRate::Fixed,
                },
                iterations,
                seed: 3,
                reshuffle: true,
            },
            threads,
            grid: None,
        }
    }

    #[test]
    fn every_block_processed_exactly_target_times() {
        let data = low_rank_data(50, 50, 8);
        let (_, report) = train_with_report(&data, &cfg(4, 7));
        assert!(report.update_counts.iter().all(|&c| c == 7));
        assert_eq!(
            report.total_passes,
            (report.grid_rows * report.grid_cols) as u64 * 7
        );
    }

    #[test]
    fn converges_with_multiple_threads() {
        let data = low_rank_data(60, 60, 9);
        let model = train(&data, &cfg(4, 40));
        let rmse = eval::rmse(&model, &data);
        assert!(rmse < 0.2, "fpsgd rmse too high: {rmse}");
    }

    #[test]
    fn single_thread_matches_quality() {
        let data = low_rank_data(40, 40, 10);
        let model = train(&data, &cfg(1, 40));
        assert!(eval::rmse(&model, &data) < 0.2);
    }

    #[test]
    fn custom_grid_respected() {
        let data = low_rank_data(30, 30, 11);
        let mut c = cfg(2, 3);
        c.grid = Some((5, 4));
        let (_, report) = train_with_report(&data, &c);
        assert_eq!((report.grid_rows, report.grid_cols), (5, 4));
        assert_eq!(report.update_counts.len(), 20);
    }

    #[test]
    fn zero_iterations_is_noop() {
        let data = low_rank_data(10, 10, 12);
        let (model, report) = train_with_report(&data, &cfg(2, 0));
        assert_eq!(report.total_passes, 0);
        assert_eq!(
            model,
            Model::init_for_ratings(data.nrows(), data.ncols(), 8, 3, data.mean_rating())
        );
    }
}
