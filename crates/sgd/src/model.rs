//! The factor matrices `P` and `Q`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The dense result of matrix factorization: `P ∈ R^{m×k}` and
/// `Q ∈ R^{k×n}`, with `R ≈ P·Q` (paper Eq. 1).
///
/// `Q` is stored **transposed** (one contiguous `k`-vector per item), so a
/// single rating update reads and writes two contiguous cache-resident
/// vectors — the same layout LIBMF and cuMF_SGD use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    m: u32,
    n: u32,
    k: usize,
    /// `m × k`, row-major: `p[u*k..][..k]` is the user-`u` factor `p_u`.
    p: Vec<f32>,
    /// `n × k`, row-major: `q[v*k..][..k]` is the item-`v` factor `q_v`.
    q: Vec<f32>,
}

impl Model {
    /// Random initialization: entries uniform in `[0, 1/√k)`, the standard
    /// scheme for ~unit-scale ratings. For wider rating scales (Yahoo's
    /// 0–100) use [`Model::init_for_ratings`], which centers the initial
    /// prediction on the observed mean — without it the first SGD steps
    /// see errors the size of the rating range and diverge. Deterministic
    /// in `seed`.
    pub fn init(m: u32, n: u32, k: usize, seed: u64) -> Model {
        Model::init_with_scale(m, n, k, seed, 1.0 / (k as f32).sqrt())
    }

    /// Random initialization with factor entries uniform in `[0, scale)`.
    pub fn init_with_scale(m: u32, n: u32, k: usize, seed: u64, scale: f32) -> Model {
        assert!(k > 0, "latent dimension must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "invalid init scale");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fill =
            |len: usize| -> Vec<f32> { (0..len).map(|_| rng.random::<f32>() * scale).collect() };
        let p = fill(m as usize * k);
        let q = fill(n as usize * k);
        Model { m, n, k, p, q }
    }

    /// Initialization matched to a rating scale: entries uniform in
    /// `[0, 2·√(mean/k))`, so the expected initial prediction
    /// `E[p·q] = k·(√(mean/k))² = mean`. Falls back to [`Model::init`]
    /// when `mean_rating` is not positive (empty data).
    pub fn init_for_ratings(m: u32, n: u32, k: usize, seed: u64, mean_rating: f64) -> Model {
        if mean_rating <= 0.0 || !mean_rating.is_finite() {
            return Model::init(m, n, k, seed);
        }
        let scale = 2.0 * (mean_rating as f32 / k as f32).sqrt();
        Model::init_with_scale(m, n, k, seed, scale)
    }

    /// A model with every factor entry set to `value` (tests, ALS warm
    /// starts).
    pub fn constant(m: u32, n: u32, k: usize, value: f32) -> Model {
        Model {
            m,
            n,
            k,
            p: vec![value; m as usize * k],
            q: vec![value; n as usize * k],
        }
    }

    /// Builds a model from explicit factor buffers.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with `m`, `n`, `k`.
    pub fn from_parts(m: u32, n: u32, k: usize, p: Vec<f32>, q: Vec<f32>) -> Model {
        assert_eq!(p.len(), m as usize * k, "P buffer length");
        assert_eq!(q.len(), n as usize * k, "Q buffer length");
        Model { m, n, k, p, q }
    }

    /// Number of users (rows of `R`).
    #[inline]
    pub fn nrows(&self) -> u32 {
        self.m
    }

    /// Number of items (columns of `R`).
    #[inline]
    pub fn ncols(&self) -> u32 {
        self.n
    }

    /// Latent dimension `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The user-`u` factor vector `p_u`.
    #[inline]
    pub fn p_row(&self, u: u32) -> &[f32] {
        &self.p[u as usize * self.k..(u as usize + 1) * self.k]
    }

    /// The item-`v` factor vector `q_v`.
    #[inline]
    pub fn q_row(&self, v: u32) -> &[f32] {
        &self.q[v as usize * self.k..(v as usize + 1) * self.k]
    }

    /// Mutable user factor.
    #[inline]
    pub fn p_row_mut(&mut self, u: u32) -> &mut [f32] {
        &mut self.p[u as usize * self.k..(u as usize + 1) * self.k]
    }

    /// Mutable item factor.
    #[inline]
    pub fn q_row_mut(&mut self, v: u32) -> &mut [f32] {
        &mut self.q[v as usize * self.k..(v as usize + 1) * self.k]
    }

    /// Both factor vectors of a rating, mutably — the borrow shape the SGD
    /// kernel needs. `p` and `q` are separate allocations, so this is safe
    /// without `split_at_mut` gymnastics.
    #[inline]
    pub fn pq_rows_mut(&mut self, u: u32, v: u32) -> (&mut [f32], &mut [f32]) {
        let k = self.k;
        (
            &mut self.p[u as usize * k..(u as usize + 1) * k],
            &mut self.q[v as usize * k..(v as usize + 1) * k],
        )
    }

    /// Predicted rating `p_u · q_v`.
    #[inline]
    pub fn predict(&self, u: u32, v: u32) -> f32 {
        crate::kernel::dot(self.p_row(u), self.q_row(v))
    }

    /// Raw `P` buffer (benchmarks, serialization).
    pub fn p_raw(&self) -> &[f32] {
        &self.p
    }

    /// Raw `Q` buffer.
    pub fn q_raw(&self) -> &[f32] {
        &self.q
    }

    /// Decomposes the model into `(m, n, k, p, q)`, handing the factor
    /// buffers to the caller without copying — the constructor
    /// [`Model::from_parts`] inverts it. Used by the serving layer to
    /// re-shard a loaded checkpoint's item factors in place.
    pub fn into_parts(self) -> (u32, u32, usize, Vec<f32>, Vec<f32>) {
        (self.m, self.n, self.k, self.p, self.q)
    }

    /// Raw pointers + geometry for the shared-memory trainers. See
    /// [`crate::shared::SharedModel`].
    pub(crate) fn raw_parts_mut(&mut self) -> (*mut f32, *mut f32, usize, u32, u32) {
        (
            self.p.as_mut_ptr(),
            self.q.as_mut_ptr(),
            self.k,
            self.m,
            self.n,
        )
    }

    /// Bytes needed to ship the factors of `rows` user rows over a bus:
    /// `rows · k · 4`. Used by the GPU transfer model.
    pub fn factor_bytes(&self, rows: u64) -> u64 {
        rows * self.k as u64 * 4
    }

    /// Top-`count` items for user `u` by predicted score, excluding
    /// `exclude` (already-rated items), as `(item, score)` pairs sorted
    /// descending. The recommendation primitive used by the examples and
    /// the serial oracle `mf-serve`'s batched top-k is verified against.
    ///
    /// **Ordering contract:** results are sorted by score descending,
    /// with exact ties broken by ascending item id — a total order, so
    /// the result is unique and deterministic. Scores are compared with
    /// `f32::total_cmp` (NaN orders above +∞ and thus sorts first; a
    /// trained model never produces one, but the call stays total).
    ///
    /// **Edge cases** (all non-panicking): `count = 0` and empty
    /// candidate sets (everything excluded, or `n = 0`) return an empty
    /// vector; `count` larger than the candidate set returns every
    /// candidate; `exclude` may be unsorted, contain duplicates, or name
    /// out-of-range items; a degenerate `k = 0` model scores every item
    /// `0.0` and the tie-break returns the first `count` item ids in
    /// ascending order.
    ///
    /// Runs in `O(n·k + |exclude|·log|exclude| + n·log|exclude| + n +
    /// count·log count)`: the exclusion test is a binary search over a
    /// sorted copy of `exclude` (not an `O(|exclude|)` linear probe per
    /// item), and only the top `count` survivors are selected
    /// (`select_nth_unstable`) and sorted — not the full item catalog.
    pub fn recommend(&self, u: u32, exclude: &[u32], count: usize) -> Vec<(u32, f32)> {
        if count == 0 {
            return Vec::new();
        }
        let mut excluded = exclude.to_vec();
        excluded.sort_unstable();
        let mut scored: Vec<(u32, f32)> = (0..self.n)
            .filter(|v| excluded.binary_search(v).is_err())
            .map(|v| (v, self.predict(u, v)))
            .collect();
        let desc = |a: &(u32, f32), b: &(u32, f32)| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0));
        if count < scored.len() {
            // Partition so the `count` best items occupy the head, then
            // sort only that head.
            scored.select_nth_unstable_by(count, desc);
            scored.truncate(count);
        }
        scored.sort_by(desc);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_and_scaled() {
        let a = Model::init(10, 8, 16, 7);
        let b = Model::init(10, 8, 16, 7);
        assert_eq!(a, b);
        let c = Model::init(10, 8, 16, 8);
        assert_ne!(a, c);
        let bound = 1.0 / 4.0;
        assert!(a.p_raw().iter().all(|&x| (0.0..bound).contains(&x)));
        assert!(a.q_raw().iter().all(|&x| (0.0..bound).contains(&x)));
    }

    #[test]
    fn init_for_ratings_centers_predictions() {
        let mean = 50.0;
        let m = Model::init_for_ratings(200, 200, 16, 3, mean);
        // Average prediction over a grid of pairs should land near the
        // mean (law of large numbers over uniform factors).
        let mut acc = 0.0f64;
        let mut count = 0;
        for u in (0..200).step_by(7) {
            for v in (0..200).step_by(7) {
                acc += m.predict(u, v) as f64;
                count += 1;
            }
        }
        let avg = acc / count as f64;
        assert!(
            (avg - mean).abs() / mean < 0.25,
            "avg initial prediction {avg:.1} vs mean {mean}"
        );
        // Non-positive mean falls back to the unit-scale init.
        assert_eq!(
            Model::init_for_ratings(4, 4, 8, 1, 0.0),
            Model::init(4, 4, 8, 1)
        );
    }

    #[test]
    fn row_accessors() {
        let mut m = Model::constant(3, 2, 4, 1.0);
        m.p_row_mut(1)[2] = 9.0;
        assert_eq!(m.p_row(1), &[1.0, 1.0, 9.0, 1.0]);
        assert_eq!(m.p_row(0), &[1.0; 4]);
        m.q_row_mut(0)[0] = -1.0;
        assert_eq!(m.q_row(0)[0], -1.0);
        assert_eq!(m.q_row(1), &[1.0; 4]);
    }

    #[test]
    fn pq_rows_mut_returns_correct_rows() {
        let mut m = Model::constant(2, 2, 2, 0.0);
        {
            let (p, q) = m.pq_rows_mut(1, 0);
            p[0] = 5.0;
            q[1] = 7.0;
        }
        assert_eq!(m.p_row(1), &[5.0, 0.0]);
        assert_eq!(m.q_row(0), &[0.0, 7.0]);
        assert_eq!(m.p_row(0), &[0.0, 0.0]);
    }

    #[test]
    fn predict_is_dot_product() {
        let p = vec![1.0, 2.0, 1.0, 0.0];
        let q = vec![3.0, 4.0, 0.5, 0.5];
        let m = Model::from_parts(2, 2, 2, p, q);
        assert_eq!(m.predict(0, 0), 11.0); // 1*3 + 2*4
        assert_eq!(m.predict(1, 1), 0.5);
    }

    #[test]
    fn recommend_excludes_and_sorts() {
        // Item scores for user 0: item0=1, item1=3, item2=2.
        let p = vec![1.0];
        let q = vec![1.0, 3.0, 2.0];
        let m = Model::from_parts(1, 3, 1, p, q);
        let rec = m.recommend(0, &[1], 5);
        assert_eq!(rec.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![2, 0]);
        let top1 = m.recommend(0, &[], 1);
        assert_eq!(top1[0].0, 1);
    }

    #[test]
    fn recommend_partial_selection_matches_full_sort() {
        let m = Model::init(4, 500, 8, 11);
        let exclude: Vec<u32> = (0..500).filter(|v| v % 7 == 0).collect();
        for count in [0usize, 1, 10, 400, 600] {
            let fast = m.recommend(2, &exclude, count);
            // Reference: score everything, full sort, truncate.
            let mut full: Vec<(u32, f32)> = (0..500)
                .filter(|v| !exclude.contains(v))
                .map(|v| (v, m.predict(2, v)))
                .collect();
            full.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            full.truncate(count);
            assert_eq!(fast, full, "count={count}");
        }
    }

    #[test]
    fn recommend_count_larger_than_candidate_set() {
        // 3 items, 1 excluded → 2 candidates; asking for 10 returns both.
        let m = Model::from_parts(1, 3, 1, vec![1.0], vec![1.0, 3.0, 2.0]);
        let rec = m.recommend(0, &[1], 10);
        assert_eq!(rec.iter().map(|&(v, _)| v).collect::<Vec<_>>(), vec![2, 0]);
    }

    #[test]
    fn recommend_all_items_excluded_is_empty() {
        let m = Model::from_parts(1, 3, 1, vec![1.0], vec![1.0, 3.0, 2.0]);
        assert!(m.recommend(0, &[0, 1, 2], 5).is_empty());
        // Duplicates and out-of-range ids in `exclude` are harmless.
        assert!(m.recommend(0, &[0, 0, 1, 1, 2, 2, 99], 5).is_empty());
        assert_eq!(m.recommend(0, &[], 0), vec![]);
    }

    #[test]
    fn recommend_k_zero_model_does_not_panic() {
        // A k = 0 model scores every item 0.0; the tie-break returns the
        // lowest item ids in ascending order.
        let m = Model::from_parts(2, 5, 0, vec![], vec![]);
        let rec = m.recommend(1, &[2], 3);
        assert_eq!(rec, vec![(0, 0.0), (1, 0.0), (3, 0.0)]);
        assert_eq!(
            Model::constant(2, 2, 0, 0.0).recommend(0, &[], 1),
            vec![(0, 0.0)]
        );
    }

    #[test]
    fn recommend_tie_break_is_ascending_item_id() {
        // Items 1, 3, 4 tie at the top score; ties resolve by id.
        let q = vec![2.0, 5.0, 1.0, 5.0, 5.0];
        let m = Model::from_parts(1, 5, 1, vec![1.0], q);
        let rec = m.recommend(0, &[], 4);
        assert_eq!(
            rec,
            vec![(1, 5.0), (3, 5.0), (4, 5.0), (0, 2.0)],
            "ties must break by ascending item id"
        );
    }

    #[test]
    fn factor_bytes() {
        let m = Model::constant(4, 4, 32, 0.0);
        assert_eq!(m.factor_bytes(10), 10 * 32 * 4);
    }

    #[test]
    #[should_panic(expected = "P buffer length")]
    fn from_parts_validates() {
        let _ = Model::from_parts(2, 2, 2, vec![0.0; 3], vec![0.0; 4]);
    }
}
