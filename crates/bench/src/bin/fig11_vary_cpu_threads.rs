//! Figure 11 — running time while varying the CPU thread count (4–16)
//! with GPU workers fixed at the default 128.
//!
//! The shape: GPU-Only flat; CPU-Only improves with threads; HSGD\*
//! fastest throughout and improving with threads.

use hsgd_core::{experiments, Algorithm};
use mf_bench::{fmt_secs, print_table, BenchArgs};
use mf_data::PresetName;

fn main() {
    let args = BenchArgs::parse();
    let thread_sweep = [4usize, 8, 12, 16];

    for name in PresetName::all() {
        let (p, ds) = args.dataset(name);
        let scale = args.scale_for(name);

        // GPU-Only doesn't depend on thread count: run once.
        let cfg0 = args.rig(&p, scale);
        let gpu_time = experiments::run(Algorithm::GpuOnly, &ds.train, &ds.test, &cfg0)
            .report
            .virtual_secs;

        let mut rows = Vec::new();
        for &nc in &thread_sweep {
            let mut targs = args.clone();
            targs.nc = nc;
            let cfg = targs.rig(&p, scale);
            let cpu = experiments::run(Algorithm::CpuOnly, &ds.train, &ds.test, &cfg)
                .report
                .virtual_secs;
            let star = experiments::run(Algorithm::HsgdStar, &ds.train, &ds.test, &cfg).report;
            rows.push(vec![
                nc.to_string(),
                fmt_secs(cpu),
                fmt_secs(gpu_time),
                fmt_secs(star.virtual_secs),
                format!("{:.2}", star.alpha_planned.unwrap_or(0.0)),
            ]);
        }
        print_table(
            &format!(
                "Fig. 11 — {} (scale 1/{scale}, {} iters, {} GPU workers): time vs CPU threads",
                p.generator.name, args.iterations, args.workers
            ),
            &["threads", "CPU-Only", "GPU-Only", "HSGD*", "alpha"],
            &rows,
        );
    }
}
