//! Property tests for the grid partitioner: every entry lands in exactly one
//! block, inside that block's row/column ranges, for arbitrary matrices and
//! arbitrary (possibly nonuniform, possibly empty-band) cut vectors.

use mf_sparse::{GridPartition, GridSpec, Rating, SparseMatrix};
use proptest::prelude::*;

/// Strategy: a matrix with shape up to 64x64 and up to 400 entries.
fn arb_matrix() -> impl Strategy<Value = SparseMatrix> {
    (1u32..64, 1u32..64).prop_flat_map(|(m, n)| {
        prop::collection::vec((0..m, 0..n, -10.0f32..10.0), 0..400).prop_map(move |trips| {
            SparseMatrix::new(
                m,
                n,
                trips
                    .into_iter()
                    .map(|(u, v, r)| Rating::new(u, v, r))
                    .collect(),
            )
            .expect("in-bounds by construction")
        })
    })
}

/// Strategy: non-decreasing cuts from 0 to `dim` with 1..=8 bands.
fn arb_cuts(dim: u32) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..=dim, 0..7).prop_map(move |mut mids| {
        mids.sort_unstable();
        let mut cuts = Vec::with_capacity(mids.len() + 2);
        cuts.push(0);
        cuts.extend(mids);
        cuts.push(dim);
        cuts
    })
}

proptest! {
    #[test]
    fn partition_is_exact_cover(m in arb_matrix()) {
        let spec_strategy = (arb_cuts(m.nrows()), arb_cuts(m.ncols()));
        // Use a fixed derived spec per matrix to avoid nested runners: take
        // three representative grids.
        let specs = vec![
            GridSpec::uniform(m.nrows(), m.ncols(), 1, 1),
            GridSpec::uniform(m.nrows(), m.ncols(), 4, 3),
            GridSpec::uniform(m.nrows(), m.ncols(), 7, 7),
        ];
        drop(spec_strategy);
        for spec in specs {
            let part = GridPartition::build(&m, spec);
            prop_assert_eq!(part.total_nnz(), m.nnz());
            let mut count = 0usize;
            for id in part.spec().blocks() {
                let rr = part.spec().row_range(id.row);
                let cr = part.spec().col_range(id.col);
                for e in part.block(id).iter() {
                    prop_assert!(rr.contains(&e.u));
                    prop_assert!(cr.contains(&e.v));
                    count += 1;
                }
            }
            prop_assert_eq!(count, m.nnz());
        }
    }

    #[test]
    fn nonuniform_cuts_partition_exactly(
        (m, row_cuts, col_cuts) in arb_matrix().prop_flat_map(|m| {
            let rc = arb_cuts(m.nrows());
            let cc = arb_cuts(m.ncols());
            (Just(m), rc, cc)
        })
    ) {
        let spec = GridSpec::from_cuts(row_cuts, col_cuts).expect("valid by construction");
        let part = GridPartition::build(&m, spec);
        prop_assert_eq!(part.total_nnz(), m.nnz());
        // Sum of block lens equals nnz, and each entry's block agrees with
        // block_of lookup.
        let mut total = 0usize;
        for id in part.spec().blocks() {
            for e in part.block(id).iter() {
                prop_assert_eq!(part.spec().block_of(e.u, e.v), id);
            }
            total += part.block_len(id);
        }
        prop_assert_eq!(total, m.nnz());
    }

    #[test]
    fn band_lookup_matches_linear_scan(
        dim in 1u32..100,
        seed_cuts in prop::collection::vec(0u32..100, 0..6),
    ) {
        let mut mids: Vec<u32> = seed_cuts.into_iter().map(|c| c % (dim + 1)).collect();
        mids.sort_unstable();
        let mut cuts = vec![0u32];
        cuts.extend(mids);
        cuts.push(dim);
        let spec = GridSpec::from_cuts(cuts.clone(), vec![0, dim]).unwrap();
        for x in 0..dim {
            let band = spec.row_block_of(x);
            let range = spec.row_range(band);
            prop_assert!(range.contains(&x), "x={} band={} range={:?} cuts={:?}", x, band, range, cuts);
        }
    }
}
