//! Table I — dataset statistics and parameter settings.
//!
//! Prints the paper's full-scale numbers next to the synthetic stand-ins
//! generated at this run's scale, so every other experiment's inputs are
//! auditable.

use mf_bench::{print_table, BenchArgs};
use mf_data::{preset, PresetName};

fn main() {
    let args = BenchArgs::parse();
    let mut rows = Vec::new();
    for name in PresetName::all() {
        let scale = args.scale_for(name);
        let p = preset(name, scale, args.seed);
        let ds = p.build();
        let (lo, hi) = ds.train.rating_range().unwrap_or((0.0, 0.0));
        rows.push(vec![
            name.label().to_string(),
            format!("1/{scale}"),
            p.generator.num_users.to_string(),
            p.generator.num_items.to_string(),
            ds.train.nnz().to_string(),
            ds.test.nnz().to_string(),
            p.k.to_string(),
            format!("{}", p.lambda_p),
            format!("{}", p.gamma),
            format!("[{lo:.0},{hi:.0}]"),
            format!("{:.2}", p.generator.noise_std),
        ]);
    }
    print_table(
        "Table I — network statistics and parameter settings (synthetic stand-ins)",
        &[
            "dataset", "scale", "m", "n", "#train", "#test", "k", "lambda", "gamma", "range",
            "noise",
        ],
        &rows,
    );

    let mut full = Vec::new();
    for name in PresetName::all() {
        let p = preset(name, 1, args.seed);
        full.push(vec![
            name.label().to_string(),
            p.generator.num_users.to_string(),
            p.generator.num_items.to_string(),
            p.generator.num_train.to_string(),
            p.generator.num_test.to_string(),
        ]);
    }
    print_table(
        "Paper's full-scale Table I (reference)",
        &["dataset", "m", "n", "#train", "#test"],
        &full,
    );
}
