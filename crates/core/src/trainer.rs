//! The virtual-time training world.
//!
//! [`VirtualExecutor`] is the DES implementation of
//! [`crate::executor::Executor`]: a deterministic discrete-event
//! simulation drives any [`BlockScheduler`] over a pool of virtual
//! devices:
//!
//! * Every device keeps [`Device::queue_depth`] tasks in flight: CPU
//!   workers hold one and request the next on completion; GPUs keep
//!   **two** (current + prefetched), which is what lets the stream
//!   pipeline overlap the next block's transfer with the current kernel —
//!   the reason the HSGD\* grid has `2·n_g` extra columns.
//! * Every task executes real SGD arithmetic on the shared model at
//!   dispatch; its completion event fires at the modeled time. Because
//!   concurrently scheduled tasks are independent (disjoint factor rows),
//!   the serialized execution is equivalent to the parallel one.
//!
//! Test-RMSE probes fire at iteration boundaries (and optionally on a
//! virtual-time interval), producing the RMSE-over-time series of
//! Figs. 12–13; an optional RMSE target stops the run early, the
//! measurement protocol of Sec. VII-A.
//!
//! The same schedulers run on real OS threads through
//! [`crate::runtime`] — see ARCHITECTURE.md § "Execution layers".

use std::collections::VecDeque;

use mf_des::{Engine, EngineHandle, SimTime};
use mf_sgd::Model;
use mf_sparse::SparseMatrix;

use crate::config::HeteroConfig;
use crate::devices::CpuWorker;
use crate::executor::{
    train_with_executor, Device, DeviceHealth, ExecContext, ExecOutcome, Executor, ProbeState,
};
use crate::scheduler::{BlockScheduler, Task, WorkerClass};

pub use crate::executor::{DevicePool, TrainOutcome};

#[derive(Debug, Clone, Copy)]
enum Ev {
    Kick(usize),
    Finish(usize),
    Probe,
}

/// One virtual device plus its in-flight window and identity.
struct Slot {
    dev: Box<dyn Device>,
    class: WorkerClass,
    inflight: VecDeque<Task>,
}

struct Sim<'a, 'b> {
    ctx: &'b mut ExecContext<'a>,
    /// CPU slots first (`0..ncpu`), then GPU slots — the same index space
    /// the events carry.
    slots: Vec<Slot>,
    ncpu: usize,
    /// Requeue a failed device's in-flight tasks to the scheduler (the
    /// device-failure drain fix). Always on in production; the fuzz
    /// harness's negative test turns it off to demonstrate the monitor
    /// catches the pre-fix lost-block stall.
    drain_failed: bool,
    probes: ProbeState,
    cpu_points: u64,
    gpu_points: u64,
    cpu_busy: f64,
    gpu_busy: f64,
    end_time: SimTime,
}

impl Sim<'_, '_> {
    fn is_drained(&self) -> bool {
        self.slots.iter().all(|s| s.inflight.is_empty())
    }

    fn is_done(&self) -> bool {
        if !self.is_drained() {
            return false;
        }
        if self.ctx.scheduler.remaining() == 0 || self.probes.stopped {
            return true;
        }
        // Drained with passes left: terminal when a device failure
        // explains the stall (no finish event will ever fire again) —
        // without this, an interval Probe would reschedule itself forever
        // on a failure-stalled run.
        self.slots
            .iter()
            .any(|s| matches!(s.dev.health(), DeviceHealth::Failed))
    }

    fn dispatch(&mut self, i: usize, now: SimTime, h: &mut EngineHandle<'_, Ev>) {
        if self.probes.stopped {
            return;
        }
        let slot = &mut self.slots[i];
        // Re-polled every iteration: a failed device accepts no new work
        // (even if it failed while processing the task just dispatched);
        // whatever it still holds drains back to the scheduler as its
        // finish events arrive.
        while slot.inflight.len() < slot.dev.queue_depth()
            && !matches!(slot.dev.health(), DeviceHealth::Failed)
        {
            let Some(task) = self.ctx.scheduler.next_task(slot.class, self.ctx.part) else {
                break;
            };
            let gamma = self.ctx.cfg.hyper.gamma_at(task.pass);
            let comp = slot.dev.process(
                now,
                self.ctx.model,
                self.ctx.part,
                &task,
                gamma,
                &self.ctx.cfg.hyper,
            );
            match slot.class {
                WorkerClass::Cpu => {
                    self.cpu_busy += comp.busy_secs;
                    self.cpu_points += task.points as u64;
                }
                WorkerClass::Gpu(g) => {
                    self.gpu_busy += comp.busy_secs;
                    self.gpu_points += task.points as u64;
                    if let Some(cost) = &comp.cost {
                        if std::env::var("HSGD_TRACE").is_ok() {
                            eprintln!(
                                "GPU{} assign t={:.6} pts={} h2d={:.6} kern={:.6} d2h={:.6} h2d_done={:.6} kdone={:.6} done={:.6}",
                                g, now.as_secs(), task.points,
                                cost.t_h2d.as_secs(), cost.t_kernel.as_secs(), cost.t_d2h.as_secs(),
                                cost.times.h2d_done.as_secs(), cost.times.kernel_done.as_secs(), cost.times.done.as_secs()
                            );
                        }
                    }
                }
            }
            slot.inflight.push_back(task);
            h.schedule(comp.done, Ev::Finish(i));
        }
    }

    fn dispatch_all(&mut self, now: SimTime, h: &mut EngineHandle<'_, Ev>) {
        // GPUs first: they are the scarce, fast resource and must win the
        // race for freshly freed column bands. Offering columns to CPU
        // workers first lets a finishing CPU instantly re-occupy whatever
        // it (or a neighbor) just released, and a waiting GPU can then
        // starve behind 16 threads churning small blocks.
        for i in self.ncpu..self.slots.len() {
            self.dispatch(i, now, h);
        }
        for i in 0..self.ncpu {
            self.dispatch(i, now, h);
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev, h: &mut EngineHandle<'_, Ev>) {
        match ev {
            Ev::Kick(i) => self.dispatch(i, now, h),
            Ev::Finish(i) => {
                let task = self.slots[i]
                    .inflight
                    .pop_front()
                    .expect("device finish without a task in flight");
                if matches!(self.slots[i].dev.health(), DeviceHealth::Failed) {
                    // The device died with this task in flight: its result
                    // is lost, so the pass goes back to the scheduler for
                    // another device to redo. (The SGD arithmetic already
                    // ran at dispatch — the DES world cannot un-apply it —
                    // but scheduling-wise the pass is not counted and the
                    // bands are free again.) With the drain fix disabled,
                    // the task simply vanishes with the device, which is
                    // the pre-fix stalling behaviour the fuzz harness's
                    // negative test pins down.
                    if self.drain_failed {
                        self.ctx.scheduler.requeue(&task);
                        self.dispatch_all(now, h);
                    }
                    return;
                }
                self.ctx.scheduler.release(&task);
                self.end_time = self.end_time.max(now);
                self.probes.at_boundary(
                    self.ctx.scheduler.completed(),
                    now.as_secs(),
                    self.ctx.model,
                    self.ctx.test,
                    self.ctx.epoch_hook,
                );
                self.dispatch_all(now, h);
            }
            Ev::Probe => {
                self.probes
                    .probe(now.as_secs(), self.ctx.model, self.ctx.test);
                if let Some(interval) = self.ctx.cfg.probe_interval_secs {
                    if !self.is_done() {
                        h.schedule_after(SimTime::from_secs(interval), Ev::Probe);
                    }
                }
            }
        }
    }
}

/// A hook that may wrap each virtual device as the DES world builds its
/// slots — how fault injectors interpose latency/health adversaries
/// without the world knowing about them.
pub type DeviceWrapper = dyn FnMut(Box<dyn Device>, WorkerClass) -> Box<dyn Device>;

/// The virtual-time (discrete-event simulation) execution world.
///
/// Durations come from calibrated performance models; arithmetic is real.
/// Runs are bit-for-bit reproducible because the event order is fully
/// deterministic.
pub struct VirtualExecutor {
    wrap: Option<Box<DeviceWrapper>>,
    drain_failed: bool,
}

impl std::fmt::Debug for VirtualExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualExecutor")
            .field("wrap", &self.wrap.as_ref().map(|_| ".."))
            .field("drain_failed", &self.drain_failed)
            .finish()
    }
}

impl Default for VirtualExecutor {
    fn default() -> VirtualExecutor {
        VirtualExecutor::new()
    }
}

impl VirtualExecutor {
    /// Creates the DES world.
    pub fn new() -> VirtualExecutor {
        VirtualExecutor {
            wrap: None,
            drain_failed: true,
        }
    }

    /// Installs a device wrapper: every slot's device (CPU workers and
    /// GPUs alike) is passed through `wrap` at world construction, so a
    /// fault injector can interpose adversarial latency and health state
    /// per device.
    pub fn with_device_wrapper(mut self, wrap: Box<DeviceWrapper>) -> VirtualExecutor {
        self.wrap = Some(wrap);
        self
    }

    /// Enables/disables the failed-device drain fix (on by default).
    /// Disabling reproduces the pre-fix behaviour where a dead device's
    /// in-flight tasks vanish with it — only the fuzz harness's negative
    /// test should ever want this.
    pub fn with_drain_failed(mut self, on: bool) -> VirtualExecutor {
        self.drain_failed = on;
        self
    }
}

impl Executor for VirtualExecutor {
    fn name(&self) -> &'static str {
        "virtual-time DES"
    }

    fn execute(&mut self, mut ctx: ExecContext<'_>) -> ExecOutcome {
        let nblocks = ctx.scheduler.spec().block_count() as u64;
        let cpu_workers = ctx.pool.cpu_workers;
        let cpu_spec = ctx.cfg.cpu;
        let gpu_start = std::mem::take(&mut ctx.pool.gpu_start);
        let mut wrap_dev = |dev: Box<dyn Device>, class: WorkerClass| match &mut self.wrap {
            Some(w) => w(dev, class),
            None => dev,
        };
        let mut slots: Vec<Slot> = (0..cpu_workers)
            .map(|_| Slot {
                dev: wrap_dev(Box::new(CpuWorker { spec: cpu_spec }), WorkerClass::Cpu),
                class: WorkerClass::Cpu,
                inflight: VecDeque::new(),
            })
            .collect();
        for (g, gpu) in std::mem::take(&mut ctx.pool.gpus).into_iter().enumerate() {
            let class = WorkerClass::Gpu(g as u32);
            slots.push(Slot {
                dev: wrap_dev(Box::new(gpu), class),
                class,
                inflight: VecDeque::new(),
            });
        }

        let probe_interval = ctx.cfg.probe_interval_secs;
        let target = ctx.cfg.target_rmse;
        let mut sim = Sim {
            slots,
            ncpu: cpu_workers,
            drain_failed: self.drain_failed,
            probes: ProbeState::new(nblocks, target),
            cpu_points: 0,
            gpu_points: 0,
            cpu_busy: 0.0,
            gpu_busy: 0.0,
            end_time: SimTime::ZERO,
            ctx: &mut ctx,
        };

        // Baseline probe before any update. Early-exit: if the initial
        // model already satisfies the target, no training happens.
        sim.probes.probe(0.0, sim.ctx.model, sim.ctx.test);
        let mut engine: Engine<Ev> = Engine::new();
        if !sim.probes.stopped {
            for i in 0..cpu_workers {
                engine.schedule(SimTime::ZERO, Ev::Kick(i));
            }
            for g in cpu_workers..sim.slots.len() {
                let start = gpu_start
                    .get(g - cpu_workers)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                engine.schedule(start, Ev::Kick(g));
            }
            if let Some(interval) = probe_interval {
                engine.schedule(SimTime::from_secs(interval), Ev::Probe);
            }
        }

        let mut handler = |now: SimTime, ev: Ev, h: &mut EngineHandle<'_, Ev>| {
            sim.handle(now, ev, h);
        };
        while engine.step(&mut handler) {}

        // A drained event queue with passes left is a deadlock — unless a
        // device failure explains it (e.g. the only device that could run
        // a region died), in which case the run ends early but cleanly.
        let any_failed = sim
            .slots
            .iter()
            .any(|s| matches!(s.dev.health(), DeviceHealth::Failed));
        let stalled = sim.ctx.scheduler.remaining() > 0 && !sim.probes.stopped;
        assert!(
            !stalled || any_failed,
            "trainer deadlock: {} passes unassigned with all devices idle",
            sim.ctx.scheduler.remaining()
        );

        let end = sim.end_time.as_secs();
        let final_rmse = sim.probes.finish(end, sim.ctx.model, sim.ctx.test);
        ExecOutcome {
            end_secs: end,
            rmse_series: std::mem::take(&mut sim.probes.series),
            time_to_target_secs: sim.probes.time_to_target,
            final_rmse,
            cpu_points: sim.cpu_points,
            gpu_points: sim.gpu_points,
            cpu_busy_secs: sim.cpu_busy,
            gpu_busy_secs: sim.gpu_busy,
            ended_early: sim.probes.stopped || stalled,
            measured: None,
        }
    }
}

/// Runs a full training simulation in virtual time. `alpha_planned` and
/// `label` flow into the report.
pub fn run_training<S: BlockScheduler + Send>(
    train: &SparseMatrix,
    test: &SparseMatrix,
    scheduler: S,
    pool: DevicePool,
    cfg: &HeteroConfig,
    alpha_planned: Option<f64>,
    label: &str,
) -> TrainOutcome {
    run_training_with_hook(
        train,
        test,
        scheduler,
        pool,
        cfg,
        alpha_planned,
        label,
        |_, _| {},
    )
}

/// [`run_training`] with a per-epoch hook: `epoch_hook(epoch, &model)`
/// fires each time a full pass over the grid completes (1-based epoch
/// counter, the model exactly as it stands at that virtual instant).
/// This is the trainer side of checkpointing — pass
/// `mf_serve::checkpoint::epoch_hook(dir, cfg.seed)` to persist one
/// `MFCK` checkpoint per epoch; the hook runs synchronously in
/// virtual time, so the captured factors are the deterministic
/// epoch-boundary state, not a racy snapshot. Runs stopped early by
/// `target_rmse` stop emitting epochs at the stop point.
#[allow(clippy::too_many_arguments)]
pub fn run_training_with_hook<S: BlockScheduler + Send, H: FnMut(u64, &Model)>(
    train: &SparseMatrix,
    test: &SparseMatrix,
    scheduler: S,
    pool: DevicePool,
    cfg: &HeteroConfig,
    alpha_planned: Option<f64>,
    label: &str,
    epoch_hook: H,
) -> TrainOutcome {
    let mut exec = VirtualExecutor::new();
    train_with_executor(
        train,
        test,
        scheduler,
        pool,
        cfg,
        alpha_planned,
        label,
        epoch_hook,
        &mut exec,
    )
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CostModelKind, CpuSpec};
    use crate::devices::GpuWorker;
    use crate::layout::uniform_layout;
    use crate::scheduler::UniformScheduler;
    use mf_sgd::HyperParams;
    use mf_sparse::Rating;

    fn low_rank_data(m: u32, n: u32, seed: u64) -> (SparseMatrix, SparseMatrix) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<[f32; 2]> = (0..m).map(|_| [rng.random(), rng.random()]).collect();
        let b: Vec<[f32; 2]> = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in 0..m {
            for v in 0..n {
                let x: f32 = rng.random();
                if x < 0.7 {
                    let r = 1.0
                        + 2.0
                            * (a[u as usize][0] * b[v as usize][0]
                                + a[u as usize][1] * b[v as usize][1]);
                    if x < 0.6 {
                        train.push(Rating::new(u, v, r));
                    } else {
                        test.push(Rating::new(u, v, r));
                    }
                }
            }
        }
        (
            SparseMatrix::new(m, n, train).unwrap(),
            SparseMatrix::new(m, n, test).unwrap(),
        )
    }

    fn test_cfg(iterations: u32) -> HeteroConfig {
        HeteroConfig {
            hyper: HyperParams {
                k: 8,
                lambda_p: 0.01,
                lambda_q: 0.01,
                gamma: 0.05,
                schedule: mf_sgd::LearningRate::Fixed,
            },
            nc: 4,
            ng: 1,
            gpu: gpu_sim::GpuSpec::default().scaled_down(1000.0),
            cpu: CpuSpec::default(),
            iterations,
            seed: 9,
            dynamic_scheduling: true,
            cost_model: CostModelKind::Tailored,
            probe_interval_secs: None,
            target_rmse: None,
        }
    }

    #[test]
    fn cpu_only_run_completes_and_converges() {
        let (train, test) = low_rank_data(40, 40, 1);
        let cfg = test_cfg(40);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 4,
            gpus: vec![],
            gpu_start: vec![],
        };
        let out = run_training(&train, &test, sched, pool, &cfg, None, "CPU-Only");
        assert_eq!(out.report.total_passes, 20 * 40);
        let slack = crate::scheduler::SOFT_CAP_SLACK;
        assert!(out
            .report
            .update_counts
            .iter()
            .all(|&c| c <= 40 + slack && c + 3 * slack >= 40));
        assert!(out.report.virtual_secs > 0.0);
        assert!(
            out.report.final_test_rmse < 0.3,
            "rmse {}",
            out.report.final_test_rmse
        );
        assert_eq!(out.report.gpu_points, 0);
        assert!(out.report.cpu_points > 0);
        // RMSE series is non-trivially populated and time-sorted.
        assert!(out.report.rmse_series.len() >= 10);
        assert!(out.report.rmse_series.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn gpu_only_run_completes() {
        let (train, test) = low_rank_data(40, 40, 2);
        let cfg = test_cfg(30);
        let spec = uniform_layout(&train, 1, 3);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let mut gpu = GpuWorker::new(cfg.gpu);
        gpu.resident_all = true;
        let load = gpu.initial_load_time(train.nnz() as u64, &Model::init(40, 40, 8, 9));
        let pool = DevicePool {
            cpu_workers: 0,
            gpus: vec![gpu],
            gpu_start: vec![load],
        };
        let out = run_training(&train, &test, sched, pool, &cfg, None, "GPU-Only");
        assert_eq!(out.report.total_passes, 3 * 30);
        assert!(out.report.final_test_rmse < 0.35);
        assert_eq!(out.report.cpu_points, 0);
        assert!(out.report.gpu_points > 0);
        assert!(out.report.virtual_secs >= load.as_secs());
    }

    #[test]
    fn deterministic_given_seed() {
        let (train, test) = low_rank_data(30, 30, 3);
        let cfg = test_cfg(10);
        let run = || {
            let spec = uniform_layout(&train, 5, 4);
            let sched = UniformScheduler::new(spec, cfg.iterations, true);
            let pool = DevicePool {
                cpu_workers: 4,
                gpus: vec![],
                gpu_start: vec![],
            };
            run_training(&train, &test, sched, pool, &cfg, None, "CPU-Only")
        };
        let a = run();
        let b = run();
        assert_eq!(a.model, b.model);
        assert_eq!(a.report.virtual_secs, b.report.virtual_secs);
        assert_eq!(a.report.rmse_series, b.report.rmse_series);
    }

    #[test]
    fn epoch_hook_fires_once_per_epoch_with_final_model() {
        let (train, test) = low_rank_data(30, 30, 7);
        let cfg = test_cfg(8);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 4,
            gpus: vec![],
            gpu_start: vec![],
        };
        let mut epochs = Vec::new();
        let mut snapshots: Vec<Model> = Vec::new();
        let out = run_training_with_hook(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            None,
            "CPU-Only",
            |e, m| {
                epochs.push(e);
                snapshots.push(m.clone());
            },
        );
        // One hook call per epoch, in order, 1-based.
        assert_eq!(epochs, (1..=8).collect::<Vec<u64>>());
        // The last snapshot is the finished model.
        assert_eq!(snapshots.last().unwrap(), &out.model);
        // Earlier snapshots differ (training moved the factors).
        assert_ne!(snapshots.first().unwrap(), &out.model);
    }

    /// Wrapper device that permanently fails after a fixed number of
    /// dispatched tasks — the unit-level stand-in for the fuzz harness's
    /// scripted device deaths.
    struct FailAfter {
        inner: Box<dyn Device>,
        cell: std::sync::Arc<crate::executor::HealthCell>,
        left: usize,
    }

    impl Device for FailAfter {
        fn queue_depth(&self) -> usize {
            self.inner.queue_depth()
        }

        fn health(&self) -> crate::executor::DeviceHealth {
            self.cell.get()
        }

        fn process(
            &mut self,
            now: SimTime,
            model: &mut Model,
            part: &mf_sparse::GridPartition,
            task: &Task,
            gamma: f32,
            hyper: &mf_sgd::HyperParams,
        ) -> crate::executor::DeviceCompletion {
            let comp = self.inner.process(now, model, part, task, gamma, hyper);
            self.left -= 1;
            if self.left == 0 {
                self.cell.fail();
            }
            comp
        }
    }

    #[test]
    fn failed_device_drains_queue_back_to_scheduler() {
        use crate::executor::HealthCell;
        use crate::layout::StarLayout;
        use crate::scheduler::StarScheduler;
        use std::sync::Arc;

        // A star run whose GPU dies after 3 dispatched tasks, with one of
        // them still in flight. The drain fix must requeue the in-flight
        // work so the CPU workers finish everything: no pass lost, no
        // deadlock panic, accounting exact.
        let (train, test) = low_rank_data(48, 48, 11);
        let cfg = test_cfg(2);
        let layout = StarLayout::build(&train, 2, 1, 0.5);
        let sched = StarScheduler::new(layout, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![GpuWorker::new(cfg.gpu)],
            gpu_start: vec![SimTime::ZERO],
        };
        let cell = Arc::new(HealthCell::new());
        let cell2 = Arc::clone(&cell);
        let mut exec =
            VirtualExecutor::new().with_device_wrapper(Box::new(move |dev, class| match class {
                WorkerClass::Gpu(_) => Box::new(FailAfter {
                    inner: dev,
                    cell: Arc::clone(&cell2),
                    left: 3,
                }),
                WorkerClass::Cpu => dev,
            }));
        let out = train_with_executor(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            None,
            "gpu-dies",
            |_, _| {},
            &mut exec,
        );
        assert!(cell.is_failed(), "the injected failure must have fired");
        assert!(out.report.gpu_points > 0, "GPU worked before dying");
        assert!(out.report.cpu_points > 0);
        // Drain invariant: every completed pass is counted exactly once —
        // a lost (never-requeued) task would leave counts above completed,
        // a double-executed one would leave them below.
        let total: u64 = out.report.update_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.report.total_passes);
        // And nothing was left unassigned: the CPU side stole the dead
        // GPU's region to completion.
        assert_eq!(
            out.report.total_passes,
            out.report.update_counts.len() as u64 * cfg.iterations as u64
        );
    }

    #[test]
    fn all_devices_failed_ends_early_instead_of_deadlocking() {
        use crate::executor::HealthCell;
        use std::sync::Arc;

        // Every device dies almost immediately: the run must end with
        // `ended_early` (not the deadlock assert) and consistent counts.
        let (train, test) = low_rank_data(30, 30, 12);
        let cfg = test_cfg(6);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 2,
            gpus: vec![],
            gpu_start: vec![],
        };
        let mut exec = VirtualExecutor::new().with_device_wrapper(Box::new(|dev, _| {
            Box::new(FailAfter {
                inner: dev,
                cell: Arc::new(HealthCell::new()),
                left: 2,
            })
        }));
        let out = train_with_executor(
            &train,
            &test,
            sched,
            pool,
            &cfg,
            None,
            "all-die",
            |_, _| {},
            &mut exec,
        );
        // Whatever completed is exactly what the counts say.
        let total: u64 = out.report.update_counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, out.report.total_passes);
        assert!(out.report.total_passes < 20 * cfg.iterations as u64);
    }

    #[test]
    fn target_rmse_stops_early() {
        let (train, test) = low_rank_data(40, 40, 4);
        let mut cfg = test_cfg(200);
        cfg.target_rmse = Some(0.5);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 4,
            gpus: vec![],
            gpu_start: vec![],
        };
        let out = run_training(&train, &test, sched, pool, &cfg, None, "CPU-Only");
        let t = out
            .report
            .time_to_target_secs
            .expect("target should be reached");
        assert!(t > 0.0);
        // Stopped early: fewer passes than the full budget.
        assert!(out.report.total_passes < 20 * 200);
        assert!(out.report.final_test_rmse <= 0.55);
    }

    #[test]
    fn hybrid_run_uses_both_devices() {
        let (train, test) = low_rank_data(60, 60, 5);
        let cfg = test_cfg(10);
        // HSGD-style: uniform grid without per-block cap.
        let spec = uniform_layout(&train, 6, 5);
        let sched = UniformScheduler::new(spec, cfg.iterations, false);
        let pool = DevicePool {
            cpu_workers: 4,
            gpus: vec![GpuWorker::new(cfg.gpu)],
            gpu_start: vec![SimTime::ZERO],
        };
        let out = run_training(&train, &test, sched, pool, &cfg, None, "HSGD");
        assert!(out.report.cpu_points > 0, "CPU should contribute");
        assert!(out.report.gpu_points > 0, "GPU should contribute");
        assert_eq!(out.report.total_passes, 30 * 10);
    }

    #[test]
    fn interval_probes_fire() {
        let (train, test) = low_rank_data(40, 40, 6);
        let mut cfg = test_cfg(20);
        cfg.probe_interval_secs = Some(5e-5);
        let spec = uniform_layout(&train, 5, 4);
        let sched = UniformScheduler::new(spec, cfg.iterations, true);
        let pool = DevicePool {
            cpu_workers: 4,
            gpus: vec![],
            gpu_start: vec![],
        };
        let out = run_training(&train, &test, sched, pool, &cfg, None, "CPU-Only");
        // Interval probes should outnumber the ~20 boundary probes.
        assert!(
            out.report.rmse_series.len() > 25,
            "only {} probes",
            out.report.rmse_series.len()
        );
    }
}
