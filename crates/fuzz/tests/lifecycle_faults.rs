//! The fault-injected durability suite: committed lifecycle scenarios,
//! a batch of fresh generated ones, and a negative test proving the
//! harness actually detects silent corruption.

use mf_fuzz::{
    fuzz_io_seed, probe_offsets, run_io_script, run_io_script_with, shrink_io, IoEvent, IoOptions,
    IoScript, IoSubject,
};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fuzz_corpus")
}

/// Every committed IO scenario (`hsgd-fuzz io v1` magic) replays green.
#[test]
fn corpus_lifecycle_scripts_replay_green() {
    let mut seen = 0;
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "fz"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("read corpus file");
        if text.lines().next().map(str::trim) != Some(IoScript::MAGIC) {
            continue; // a scheduler script; fuzz_smoke covers it
        }
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let script: IoScript = text.parse().unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats = run_io_script(&script).unwrap_or_else(|f| panic!("{name}: {f}"));
        match script.subject {
            IoSubject::Lifecycle => assert!(
                stats.crashed || stats.recovered_epoch.is_some(),
                "{name}: scenario exercised nothing"
            ),
            IoSubject::Arena => assert!(
                stats.crashed || stats.acked_epochs < stats.epochs_run,
                "{name}: arena scenario exercised nothing"
            ),
        }
        seen += 1;
    }
    assert!(
        seen >= 3,
        "expected ≥ 3 committed lifecycle scenarios, found {seen}"
    );
}

/// Freshly generated hostile scenarios hold the durability contract.
#[test]
fn fresh_io_seeds_hold_the_contract() {
    for seed in 0..30u64 {
        if let Err(f) = fuzz_io_seed(seed) {
            let script = IoScript::generate(seed);
            let minimal = shrink_io(&script, |c| run_io_script(c).is_err());
            panic!("seed {seed}: {f}\nshrunk:\n{minimal}");
        }
    }
}

/// A scenario whose only fault is a bit flip in a mid-chain acked
/// delta: honestly audited it passes (recovery degrades to the last
/// intact prefix, which the oracle expects), but an oracle that
/// pretends the flip never happened must be caught — proving the
/// harness detects silently corrupted recoveries rather than
/// vacuously passing.
#[test]
fn harness_detects_silent_corruption() {
    let mut script = IoScript {
        subject: IoSubject::Lifecycle,
        seed: 17,
        users: 24,
        items: 32,
        k: 6,
        epochs: 5,
        per_epoch: 25,
        new_user_frac: 0.08,
        new_item_frac: 0.04,
        snapshot_every: 10, // all deltas: the chain is load-bearing
        events: Vec::new(),
    };
    let offsets = probe_offsets(&script);
    // Flip a byte of epoch 2's delta once epoch 3 is writing; then the
    // chain 0 → 1 → 2 → … is severed at 1.
    script.events.push(IoEvent::BitFlip {
        at: offsets[2] + 1,
        file: "delta_epoch_00002.mfckd".to_string(),
        byte: 321,
    });
    // Kill the run mid-way through epoch 5's delta.
    script.events.push(IoEvent::Crash {
        at: offsets[4] + 40,
    });

    let stats = run_io_script(&script).expect("honest audit is green");
    assert!(stats.crashed);
    assert_eq!(
        stats.recovered_epoch,
        Some(1),
        "the flip severs the chain after epoch 1"
    );

    let fail = run_io_script_with(&script, IoOptions { ignore_flips: true })
        .expect_err("a flip-blind oracle must be caught");
    assert!(
        fail.violations
            .iter()
            .any(|v| v.contains("recovered epoch")),
        "wrong violation class: {fail}"
    );

    // Shrinking under the broken oracle keeps both events: the flip
    // causes the divergence, the crash makes epoch 4 acked-but-lost.
    let minimal = shrink_io(&script, |c| {
        run_io_script_with(c, IoOptions { ignore_flips: true }).is_err()
    });
    assert!(
        minimal
            .events
            .iter()
            .any(|e| matches!(e, IoEvent::BitFlip { .. })),
        "shrink dropped the load-bearing flip: {minimal}"
    );
}
