//! # hsgd-core — heterogeneous CPU-GPU matrix factorization (HSGD\*)
//!
//! The primary contribution of *"Efficient Matrix Factorization on
//! Heterogeneous CPU-GPU Systems"* (Yu et al., ICDE 2021): a parallel SGD
//! trainer that divides the rating matrix **nonuniformly** between CPU
//! threads and GPUs, sizes the split with a tailored **cost model**, and
//! rebalances at runtime with **dynamic work stealing**.
//!
//! The training loop runs in virtual time on a deterministic discrete-
//! event simulator (`mf-des`): every device performs real SGD arithmetic
//! on the shared factor model while its durations come from calibrated
//! performance models (`gpu-sim` for GPUs, a flat-throughput model for CPU
//! threads — the paper's Observation 2). Because the scheduler only
//! co-schedules independent blocks, serializing their execution inside
//! the simulator is semantically identical to true parallel execution, so
//! runs are reproducible bit-for-bit.
//!
//! Modules:
//!
//! * [`config`] — algorithm/selection knobs shared by all variants.
//! * [`layout`] — the Sec. VI grid: `n_c + 2·n_g + 1` columns, `n_c + n_g`
//!   CPU rows, `n_g` GPU row groups pre-split into sub-rows for the
//!   dynamic phase.
//! * [`scheduler`] — conflict-aware block scheduling: the uniform
//!   least-updates policy (HSGD) and the region/phase policy (HSGD\*).
//! * [`executor`] — the execution-world abstraction: one scheduling
//!   core, two worlds. Both the virtual-time trainer and the real-thread
//!   runtime drive the same scheduler instances through the
//!   [`executor::Executor`] trait.
//! * [`devices`] — virtual CPU workers and the GPU adapter.
//! * [`trainer`] — the virtual-time world: event loop, RMSE probes,
//!   termination.
//! * [`runtime`] — the real-thread world: deterministic exclusive rounds
//!   and free-running relaxed workers over `mf-par`-governed threads,
//!   with measured-throughput feedback into the cost models.
//! * [`spill`] — out-of-core training: spill-backed partitions behind a
//!   byte-budgeted block cache, with disk modeled (and driven) as one
//!   more asynchronous device whose reads overlap SGD compute.
//! * [`calibration`] — the offline phase (Algorithm 3) wired to the
//!   simulated devices; produces our cost model and the Qilin baseline.
//! * [`stats`] — run reports, update-count imbalance (Example 3),
//!   utilization.
//! * [`experiments`] — one-call drivers for every algorithm the paper
//!   evaluates: CPU-Only, GPU-Only, HSGD, HSGD\*-Q, HSGD\*-M, HSGD\*.

pub mod calibration;
pub mod config;
pub mod devices;
pub mod executor;
pub mod experiments;
pub mod layout;
pub mod runtime;
pub mod scheduler;
pub mod spill;
pub mod stats;
pub mod trainer;

pub use config::{Algorithm, CostModelKind, CpuSpec, HeteroConfig};
pub use executor::{DevicePool, Executor, MeasuredThroughput, TrainOutcome};
pub use experiments::run;
pub use runtime::{run_training_real, ExecMode, ThreadedExecutor};
pub use spill::{
    train_out_of_core_real, train_out_of_core_virtual, IoSpec, IoTimeline, PrefetchDevice,
    Prefetcher,
};
pub use stats::{ImbalanceStats, RunReport};
