//! Reading and writing rating matrices.
//!
//! Two formats:
//!
//! * **Text** — one `u v r` triple per line, whitespace-separated, the
//!   de-facto interchange format of the MF literature (LIBMF, cuMF).
//! * **Binary** — a compact little-endian format with a magic header,
//!   `~20x` smaller parse time for large matrices.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::matrix::{Rating, SparseMatrix};

/// Magic bytes identifying the binary format ("MFSP" + version 1).
const MAGIC: [u8; 4] = *b"MFS1";

/// Errors arising while loading a matrix.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line or field, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Description of what failed to parse.
        what: String,
    },
    /// Binary header mismatch.
    BadMagic,
    /// Entry out of declared bounds.
    OutOfBounds {
        /// Index of the offending entry.
        index: usize,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, what } => write!(f, "parse error on line {line}: {what}"),
            LoadError::BadMagic => write!(f, "not a MFS1 binary matrix file"),
            LoadError::OutOfBounds { index } => {
                write!(f, "entry {index} out of declared bounds")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Writes a matrix as text triples: `u v r` per line.
pub fn write_text<W: Write>(m: &SparseMatrix, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    for e in m.entries() {
        writeln!(w, "{} {} {}", e.u, e.v, e.r)?;
    }
    w.flush()
}

/// Writes a matrix as text triples to a file path.
pub fn save_text<P: AsRef<Path>>(m: &SparseMatrix, path: P) -> io::Result<()> {
    write_text(m, File::create(path)?)
}

/// Read-buffer size of the streaming text parser.
const TEXT_READ_CHUNK: usize = 64 * 1024;

/// True for the whitespace the text format accepts between fields.
#[inline]
fn is_field_sep(b: u8) -> bool {
    b == b' ' || b == b'\t' || b == b'\r' || b == 0x0b || b == 0x0c
}

/// Splits a line into its next field, skipping leading separators.
/// Returns `(field, rest)`; the field is empty only when the line is
/// exhausted.
#[inline]
fn next_field(line: &[u8]) -> (&[u8], &[u8]) {
    let start = line
        .iter()
        .position(|&b| !is_field_sep(b))
        .unwrap_or(line.len());
    let line = &line[start..];
    let end = line
        .iter()
        .position(|&b| is_field_sep(b))
        .unwrap_or(line.len());
    line.split_at(end)
}

/// Parses a decimal `u32` field (optional leading `+`, digits only —
/// the same inputs `str::parse::<u32>` accepts for non-negative values).
fn parse_u32_field(field: &[u8]) -> Option<u32> {
    let digits = match field.split_first() {
        Some((b'+', rest)) => rest,
        _ => field,
    };
    if digits.is_empty() {
        return None;
    }
    let mut out: u32 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return None;
        }
        out = out.checked_mul(10)?.checked_add(d as u32)?;
    }
    Some(out)
}

/// Parses an `f32` field via the standard parser over the borrowed bytes
/// (no allocation; the field slice is validated as UTF-8 in place).
fn parse_f32_field(field: &[u8]) -> Option<f32> {
    std::str::from_utf8(field).ok()?.parse().ok()
}

/// Parses one line of the text format into `entries`. Blank and
/// comment lines are skipped.
fn parse_text_line(line: &[u8], lineno: usize, entries: &mut Vec<Rating>) -> Result<(), LoadError> {
    let (user, rest) = next_field(line);
    if user.is_empty() || user[0] == b'#' || user[0] == b'%' {
        return Ok(());
    }
    let field_err = |what: &str| LoadError::Parse {
        line: lineno,
        what: what.to_string(),
    };
    let (item, rest) = next_field(rest);
    if item.is_empty() {
        return Err(field_err("missing item"));
    }
    let (rating, _) = next_field(rest);
    if rating.is_empty() {
        return Err(field_err("missing rating"));
    }
    let u = parse_u32_field(user).ok_or_else(|| field_err("user: invalid unsigned integer"))?;
    let v = parse_u32_field(item).ok_or_else(|| field_err("item: invalid unsigned integer"))?;
    let r = parse_f32_field(rating).ok_or_else(|| field_err("rating: invalid float"))?;
    entries.push(Rating::new(u, v, r));
    Ok(())
}

/// Reads a matrix from text triples. Shape is inferred from max indices
/// unless `shape` is given. Blank lines and lines starting with `#` or `%`
/// are skipped (MatrixMarket-style comments).
///
/// The parser streams fixed-size byte chunks and splits fields directly
/// on the byte buffer — no per-line `String` (or any per-line
/// allocation), which is what makes ingesting paper-scale rating files
/// (hundreds of millions of lines) parse-bound rather than
/// allocator-bound. Lines spanning a chunk boundary are carried over in
/// a small pending buffer. Field separators are **ASCII** whitespace
/// (space, tab, CR, VT, FF) — a deliberate divergence from the old
/// `split_whitespace` parser, which also accepted exotic Unicode
/// whitespace; the interchange format is ASCII, and staying on bytes is
/// what keeps the loop allocation- and decode-free.
pub fn read_text<R: Read>(r: R, shape: Option<(u32, u32)>) -> Result<SparseMatrix, LoadError> {
    let mut r = r;
    let mut entries = Vec::new();
    let mut chunk = vec![0u8; TEXT_READ_CHUNK];
    // Tail of the previous chunk that did not end in a newline.
    let mut pending: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        let got = match r.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        let mut data = &chunk[..got];
        while let Some(nl) = data.iter().position(|&b| b == b'\n') {
            lineno += 1;
            if pending.is_empty() {
                parse_text_line(&data[..nl], lineno, &mut entries)?;
            } else {
                pending.extend_from_slice(&data[..nl]);
                parse_text_line(&pending, lineno, &mut entries)?;
                pending.clear();
            }
            data = &data[nl + 1..];
        }
        pending.extend_from_slice(data);
    }
    if !pending.is_empty() {
        lineno += 1;
        parse_text_line(&pending, lineno, &mut entries)?;
    }
    match shape {
        Some((nrows, ncols)) => SparseMatrix::new(nrows, ncols, entries)
            .map_err(|index| LoadError::OutOfBounds { index }),
        None => Ok(SparseMatrix::from_triples(
            entries.into_iter().map(|e| (e.u, e.v, e.r)),
        )),
    }
}

/// Loads a matrix from a text file path.
pub fn load_text<P: AsRef<Path>>(
    path: P,
    shape: Option<(u32, u32)>,
) -> Result<SparseMatrix, LoadError> {
    read_text(File::open(path)?, shape)
}

/// Writes a matrix in the compact binary format.
pub fn write_binary<W: Write>(m: &SparseMatrix, w: W) -> io::Result<()> {
    let mut w = BufWriter::new(w);
    w.write_all(&MAGIC)?;
    w.write_all(&m.nrows().to_le_bytes())?;
    w.write_all(&m.ncols().to_le_bytes())?;
    w.write_all(&(m.nnz() as u64).to_le_bytes())?;
    for e in m.entries() {
        w.write_all(&e.u.to_le_bytes())?;
        w.write_all(&e.v.to_le_bytes())?;
        w.write_all(&e.r.to_le_bytes())?;
    }
    w.flush()
}

/// Saves a matrix in the binary format to a path.
pub fn save_binary<P: AsRef<Path>>(m: &SparseMatrix, path: P) -> io::Result<()> {
    write_binary(m, File::create(path)?)
}

/// Reads a matrix in the binary format.
pub fn read_binary<R: Read>(r: R) -> Result<SparseMatrix, LoadError> {
    let mut r = BufReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let mut buf4 = [0u8; 4];
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf4)?;
    let nrows = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf4)?;
    let ncols = u32::from_le_bytes(buf4);
    r.read_exact(&mut buf8)?;
    let nnz = u64::from_le_bytes(buf8) as usize;
    let mut entries = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        r.read_exact(&mut buf4)?;
        let u = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let v = u32::from_le_bytes(buf4);
        r.read_exact(&mut buf4)?;
        let val = f32::from_le_bytes(buf4);
        entries.push(Rating::new(u, v, val));
    }
    SparseMatrix::new(nrows, ncols, entries).map_err(|index| LoadError::OutOfBounds { index })
}

/// Loads a matrix in the binary format from a path.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<SparseMatrix, LoadError> {
    read_binary(File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_triples(vec![(0, 0, 3.5), (1, 2, 4.0), (2, 1, 1.25)])
    }

    /// The pre-optimization line-at-a-time parser, kept verbatim as the
    /// semantic oracle for the byte-slice parser.
    fn read_text_reference<R: Read>(
        r: R,
        shape: Option<(u32, u32)>,
    ) -> Result<SparseMatrix, LoadError> {
        let mut reader = BufReader::new(r);
        let mut entries = Vec::new();
        let mut line_buf = String::new();
        let mut lineno = 0usize;
        loop {
            line_buf.clear();
            lineno += 1;
            if reader.read_line(&mut line_buf)? == 0 {
                break;
            }
            let line = line_buf.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let mut it = line.split_whitespace();
            let mut field = |what: &str| {
                it.next().ok_or_else(|| LoadError::Parse {
                    line: lineno,
                    what: format!("missing {what}"),
                })
            };
            let u: u32 = field("user")?.parse().map_err(|_| LoadError::Parse {
                line: lineno,
                what: "user".into(),
            })?;
            let v: u32 = field("item")?.parse().map_err(|_| LoadError::Parse {
                line: lineno,
                what: "item".into(),
            })?;
            let r: f32 = field("rating")?.parse().map_err(|_| LoadError::Parse {
                line: lineno,
                what: "rating".into(),
            })?;
            entries.push(Rating::new(u, v, r));
        }
        match shape {
            Some((nrows, ncols)) => SparseMatrix::new(nrows, ncols, entries)
                .map_err(|index| LoadError::OutOfBounds { index }),
            None => Ok(SparseMatrix::from_triples(
                entries.into_iter().map(|e| (e.u, e.v, e.r)),
            )),
        }
    }

    /// Both parsers must agree — same matrix on success, same error line
    /// on failure — on every edge-case input.
    #[test]
    fn byte_parser_matches_reference_on_edge_cases() {
        let long_gap = " ".repeat(2 * TEXT_READ_CHUNK);
        let big: String = (0..5000)
            .map(|i| format!("{} {} {}.5\n", i % 97, i % 89, i % 7))
            .collect();
        let cases: Vec<String> = vec![
            String::new(),
            "\n".into(),
            "\r\n\r\n".into(),
            "0 0 1.5".into(), // no trailing newline
            "0 0 1.5\n".into(),
            "  0\t0  1.5  \r\n".into(),
            "# comment\n% comment\n  # indented comment\n1 2 3\n".into(),
            "0 0 1e-3\n1 1 -2.5\n2 2 +3.25\n".into(),
            "+1 +2 4\n".into(),
            "0 0 inf\n0 1 -inf\n".into(),
            "0 0 1.0 trailing junk ignored\n".into(),
            format!("0{long_gap}1{long_gap}2.5\n"), // line far exceeds one read chunk
            big,
            // Malformed inputs: missing fields, bad numbers, negatives.
            "0 0\n".into(),
            "0\n".into(),
            "a 0 1\n".into(),
            "0 b 1\n".into(),
            "0 0 x\n".into(),
            "-1 0 1\n".into(),
            "0 -1 1\n".into(),
            "4294967296 0 1\n".into(), // u32 overflow
            "1 1 1\n0 oops 2.0\n".into(),
            "# fine\n\n9 9 9.9\nbroken\n".into(),
        ];
        for case in &cases {
            for shape in [None, Some((100u32, 100u32))] {
                let fast = read_text(case.as_bytes(), shape);
                let slow = read_text_reference(case.as_bytes(), shape);
                match (fast, slow) {
                    (Ok(a), Ok(b)) => assert_eq!(a, b, "case {case:?}"),
                    (
                        Err(LoadError::Parse { line: a, .. }),
                        Err(LoadError::Parse { line: b, .. }),
                    ) => {
                        assert_eq!(a, b, "error line differs on {case:?}")
                    }
                    (
                        Err(LoadError::OutOfBounds { index: a }),
                        Err(LoadError::OutOfBounds { index: b }),
                    ) => assert_eq!(a, b, "oob index differs on {case:?}"),
                    (fast, slow) => {
                        panic!("parsers disagree on {case:?}: fast {fast:?} vs slow {slow:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let mut buf = Vec::new();
        write_text(&m, &mut buf).unwrap();
        let back = read_text(&buf[..], None).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn text_with_comments_and_blanks() {
        let text = "# header\n\n0 0 1.5\n% more\n1 1 2.5\n";
        let m = read_text(text.as_bytes(), None).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.entries()[1].r, 2.5);
    }

    #[test]
    fn text_parse_error_reports_line() {
        let text = "0 0 1.0\n1 oops 2.0\n";
        match read_text(text.as_bytes(), None) {
            Err(LoadError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn text_missing_field() {
        let text = "0 0\n";
        assert!(matches!(
            read_text(text.as_bytes(), None),
            Err(LoadError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn explicit_shape_checked() {
        let text = "5 5 1.0\n";
        assert!(matches!(
            read_text(text.as_bytes(), Some((3, 3))),
            Err(LoadError::OutOfBounds { index: 0 })
        ));
        let ok = read_text(text.as_bytes(), Some((6, 6))).unwrap();
        assert_eq!(ok.nrows(), 6);
    }

    #[test]
    fn binary_round_trip() {
        let m = sample();
        let mut buf = Vec::new();
        write_binary(&m, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(matches!(
            read_binary(&b"NOPE"[..]),
            Err(LoadError::BadMagic)
        ));
        assert!(matches!(read_binary(&b"MF"[..]), Err(LoadError::Io(_))));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let p_text = dir.join("mf_sparse_io_test.txt");
        let p_bin = dir.join("mf_sparse_io_test.bin");
        let m = sample();
        save_text(&m, &p_text).unwrap();
        save_binary(&m, &p_bin).unwrap();
        assert_eq!(load_text(&p_text, None).unwrap(), m);
        assert_eq!(load_binary(&p_bin).unwrap(), m);
        let _ = std::fs::remove_file(p_text);
        let _ = std::fs::remove_file(p_bin);
    }
}
