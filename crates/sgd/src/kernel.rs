//! The inner SGD update (paper Eq. 3–6).
//!
//! This is the hottest code in the workspace: every trainer — sequential,
//! Hogwild, FPSGD, the simulated GPU — funnels through [`sgd_step`]. Two
//! implementations exist behind one dispatching front door:
//!
//! * **Monomorphized kernels** for the common latent dimensions
//!   ([`MONO_DIMS`]: k = 8, 16, 32, 64, 128). Each is a const-generic
//!   instantiation over `&[f32; K]`, so every loop has a compile-time trip
//!   count, no bounds checks survive, and the dot product runs on
//!   [`LANES`] split accumulators — breaking the floating-point add
//!   dependency chain that keeps a naive `sum()` serial — in exactly the
//!   shape LLVM autovectorizes (and fuses to FMA where the target has it).
//! * **A scalar reference path** ([`sgd_step_scalar`]) for every other
//!   `k`, written over exact-length `zip`s. It is also the semantic
//!   oracle the property tests compare the monomorphized kernels against.
//!
//! Dispatch is a single match on `k` per call — per *block* for the block
//! entry points, so the hot rating loop itself is fully monomorphic.
//!
//! Note the monomorphized dot reduces in a different association order
//! than the scalar one, so results may differ from the reference in the
//! last ulps (within 1e-6 for unit-scale factors); both orders are valid
//! realizations of Eq. 6.

use mf_sparse::{BlockSlices, Rating};

/// Latent dimensions with a dedicated monomorphized kernel. Every entry
/// must be a multiple of [`LANES`].
pub const MONO_DIMS: [usize; 5] = [8, 16, 32, 64, 128];

/// Generates the `k` match that routes a call to its monomorphized
/// instantiation — the single place the dispatchable dimensions are
/// spelled out as match arms. The `const` assertion below pins the arm
/// list to [`MONO_DIMS`], and the fallback arm debug-asserts the reverse
/// direction, so the two cannot drift apart silently.
macro_rules! dispatch_k {
    ($k:expr, $mono:ident($($args:expr),* $(,)?), $fallback:expr) => {
        match $k {
            8 => $mono::<8>($($args),*),
            16 => $mono::<16>($($args),*),
            32 => $mono::<32>($($args),*),
            64 => $mono::<64>($($args),*),
            128 => $mono::<128>($($args),*),
            k => {
                debug_assert!(
                    !crate::kernel::is_monomorphized(k),
                    "dimension {k} is in MONO_DIMS but has no dispatch arm"
                );
                $fallback
            }
        }
    };
}

pub(crate) use dispatch_k;

const _: () = assert!(
    matches!(MONO_DIMS, [8, 16, 32, 64, 128]),
    "MONO_DIMS changed: update the dispatch_k! match arms to match"
);

/// Split-accumulator width of the monomorphized dot product: eight
/// partial sums, enough independent chains to saturate two 4-wide (SSE)
/// or one 8-wide (AVX) FP pipe without spilling accumulator registers.
pub const LANES: usize = 8;

/// Whether `k` has a monomorphized kernel (dispatch would take the fast
/// path).
#[inline]
pub fn is_monomorphized(k: usize) -> bool {
    MONO_DIMS.contains(&k)
}

/// Dot product `p · q` over two `k`-vectors, dispatching to the
/// monomorphized kernel when `p.len()` is in [`MONO_DIMS`].
#[inline]
pub fn dot(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    dispatch_k!(p.len(), dot_mono_slices(p, q), dot_scalar(p, q))
}

/// Monomorphized dot front door: routes through the SIMD dispatch
/// ladder. Bit-identical at every [`crate::simd::SimdLevel`] — the SIMD
/// dot is association-pinned (see the `simd` module docs) — so callers
/// observe one result regardless of host or `MF_SIMD`.
#[inline(always)]
fn dot_mono_slices<const K: usize>(p: &[f32], q: &[f32]) -> f32 {
    crate::simd::dot_level::<K>(crate::simd::level(), p, q)
}

/// Slice-view adapter over [`dot_mono`] — the scalar-level body behind
/// the SIMD dispatch, and the oracle it is tested against.
#[inline(always)]
pub(crate) fn dot_mono_slices_scalar<const K: usize>(p: &[f32], q: &[f32]) -> f32 {
    dot_mono::<K>(
        p.try_into().expect("dispatch guarantees length K"),
        q.try_into().expect("dispatch guarantees length K"),
    )
}

/// The scalar reference dot product (sequential left-to-right sum).
#[inline]
pub fn dot_scalar(p: &[f32], q: &[f32]) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    p.iter().zip(q).map(|(a, b)| a * b).sum()
}

/// Monomorphized dot product: [`LANES`] independent partial sums over
/// compile-time-length arrays, reduced by a tree at the end.
#[inline(always)]
fn dot_mono<const K: usize>(p: &[f32; K], q: &[f32; K]) -> f32 {
    const { assert!(K.is_multiple_of(LANES) && K > 0) };
    // Seed the accumulators with the first chunk's products instead of
    // zeros: at K == LANES (k = 8) the whole dot is then just the products
    // plus the tree reduction — same op count as the scalar chain but
    // depth log₂(8), not 7 — instead of paying LANES wasted adds.
    let mut acc = [0f32; LANES];
    let mut l = 0;
    while l < LANES {
        acc[l] = p[l] * q[l];
        l += 1;
    }
    let mut i = LANES;
    while i < K {
        let mut l = 0;
        while l < LANES {
            acc[l] += p[i + l] * q[i + l];
            l += 1;
        }
        i += LANES;
    }
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// One SGD update for a single rating (Eq. 6):
///
/// ```text
/// e   = r − p·q
/// p  += γ (e·q − λ_P·p)
/// q  += γ (e·p − λ_Q·q)
/// ```
///
/// Returns the *pre-update* error `e`, which trainers accumulate for
/// streaming loss estimates. The update uses the pre-update `p` in the `q`
/// rule (and vice versa), matching Algorithm 1 exactly. Dispatches on
/// `p.len()` to a monomorphized kernel when one exists.
#[inline]
pub fn sgd_step(
    p: &mut [f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    dispatch_k!(
        p.len(),
        sgd_step_mono_dispatch(p, q, r, gamma, lambda_p, lambda_q),
        sgd_step_scalar(p, q, r, gamma, lambda_p, lambda_q)
    )
}

/// Monomorphized step front door: routes through the SIMD dispatch
/// ladder (`MF_SIMD`). The update is fused (FMA) on SIMD levels —
/// ulp-bounded against the scalar-level oracle, never bit-divergent in
/// the error term (the dot is association-pinned).
#[inline(always)]
fn sgd_step_mono_dispatch<const K: usize>(
    p: &mut [f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    crate::simd::sgd_step_level::<K>(crate::simd::level(), p, q, r, gamma, lambda_p, lambda_q)
}

/// The scalar reference update — any `k`, exact-length `zip` loops.
#[inline]
pub fn sgd_step_scalar(
    p: &mut [f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    let e = r - dot_scalar(p, q);
    let ge = gamma * e;
    let glp = gamma * lambda_p;
    let glq = gamma * lambda_q;
    for (pi, qi) in p.iter_mut().zip(q.iter_mut()) {
        let pv = *pi;
        let qv = *qi;
        *pi = pv + ge * qv - glp * pv;
        *qi = qv + ge * pv - glq * qv;
    }
    e
}

/// Monomorphized fused update over `&[f32; K]` views: compile-time trip
/// counts, no bounds checks, fully unrollable by LLVM. This is the
/// scalar-level body behind the SIMD dispatch — the oracle the fused
/// kernels are pinned against.
#[inline(always)]
pub(crate) fn sgd_step_mono<const K: usize>(
    p: &mut [f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f32 {
    let p: &mut [f32; K] = p.try_into().expect("dispatch guarantees length K");
    let q: &mut [f32; K] = q.try_into().expect("dispatch guarantees length K");
    let e = r - dot_mono::<K>(p, q);
    let ge = gamma * e;
    let glp = gamma * lambda_p;
    let glq = gamma * lambda_q;
    let mut i = 0;
    while i < K {
        let pv = p[i];
        let qv = q[i];
        p[i] = pv + ge * qv - glp * pv;
        q[i] = qv + ge * pv - glq * qv;
        i += 1;
    }
    e
}

/// One fixed-`Q` SGD update — the fold-in primitive. Only `p` moves:
///
/// ```text
/// e   = r − p·q
/// p  += γ (e·q − λ_P·p)
/// ```
///
/// With `q` held constant this is plain SGD on the convex single-row
/// least-squares problem `min_p Σ (r − p·q)² + λ_P·|p|²`, which is what
/// admits a new user into a trained model without retraining (see
/// `mf-serve::foldin`). Returns the pre-update error `e`. Shares the
/// dispatching [`dot`], so the dimension fast path applies here too.
#[inline]
pub fn sgd_step_fixed_q(p: &mut [f32], q: &[f32], r: f32, gamma: f32, lambda_p: f32) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    dispatch_k!(
        p.len(),
        sgd_step_fixed_q_mono(p, q, r, gamma, lambda_p),
        sgd_step_fixed_q_ref(p, q, r, gamma, lambda_p)
    )
}

#[inline(always)]
fn sgd_step_fixed_q_mono<const K: usize>(
    p: &mut [f32],
    q: &[f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
) -> f32 {
    crate::simd::sgd_step_fixed_q_level::<K>(crate::simd::level(), p, q, r, gamma, lambda_p)
}

/// The portable fixed-`Q` body — the scalar-level path behind the SIMD
/// dispatch, and the fallback for dimensions outside [`MONO_DIMS`].
#[inline]
pub(crate) fn sgd_step_fixed_q_ref(
    p: &mut [f32],
    q: &[f32],
    r: f32,
    gamma: f32,
    lambda_p: f32,
) -> f32 {
    let e = r - dot(p, q);
    let ge = gamma * e;
    let glp = gamma * lambda_p;
    // Same expression shape as `sgd_step`'s p rule, so a fixed-Q step
    // moves p bitwise-identically to the full step on equal inputs.
    for (pi, &qi) in p.iter_mut().zip(q) {
        let pv = *pi;
        *pi = pv + ge * qi - glp * pv;
    }
    e
}

/// One fixed-`P` SGD update: the [`sgd_step_fixed_q`] mirror for folding
/// in a new *item* against frozen user factors. Only `q` moves.
#[inline]
pub fn sgd_step_fixed_p(p: &[f32], q: &mut [f32], r: f32, gamma: f32, lambda_q: f32) -> f32 {
    debug_assert_eq!(p.len(), q.len());
    dispatch_k!(
        p.len(),
        sgd_step_fixed_p_mono(p, q, r, gamma, lambda_q),
        sgd_step_fixed_p_ref(p, q, r, gamma, lambda_q)
    )
}

#[inline(always)]
fn sgd_step_fixed_p_mono<const K: usize>(
    p: &[f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_q: f32,
) -> f32 {
    crate::simd::sgd_step_fixed_p_level::<K>(crate::simd::level(), p, q, r, gamma, lambda_q)
}

/// The portable fixed-`P` body (the [`sgd_step_fixed_q_ref`] mirror).
#[inline]
pub(crate) fn sgd_step_fixed_p_ref(
    p: &[f32],
    q: &mut [f32],
    r: f32,
    gamma: f32,
    lambda_q: f32,
) -> f32 {
    let e = r - dot(p, q);
    let ge = gamma * e;
    let glq = gamma * lambda_q;
    for (&pi, qi) in p.iter().zip(q.iter_mut()) {
        let qv = *qi;
        *qi = qv + ge * pi - glq * qv;
    }
    e
}

/// Applies [`sgd_step`] to every rating in `block`, with factors fetched
/// from raw model storage. `p`/`q` are the full factor buffers; `k` the
/// latent dimension. Returns the sum of squared pre-update errors, used
/// for streaming loss monitoring.
///
/// This free-function form (instead of a `&mut Model` method) is what the
/// shared-memory trainers need: they hold disjoint-region raw views. The
/// `k` dispatch happens once per block, so the rating loop is monomorphic.
#[inline]
pub fn sgd_block(
    p: &mut [f32],
    q: &mut [f32],
    k: usize,
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    dispatch_k!(
        k,
        sgd_block_mono(p, q, block, gamma, lambda_p, lambda_q),
        sgd_block_scalar(p, q, k, block, gamma, lambda_p, lambda_q)
    )
}

/// The scalar reference block loop — [`sgd_step_scalar`] per rating.
#[inline]
pub fn sgd_block_scalar(
    p: &mut [f32],
    q: &mut [f32],
    k: usize,
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    let mut sq_err = 0f64;
    for e in block {
        let pu = &mut p[e.u as usize * k..(e.u as usize + 1) * k];
        // SAFETY-free re-borrow: p and q are distinct slices.
        let qv = &mut q[e.v as usize * k..(e.v as usize + 1) * k];
        let err = sgd_step_scalar(pu, qv, e.r, gamma, lambda_p, lambda_q);
        sq_err += (err as f64) * (err as f64);
    }
    sq_err
}

#[inline(always)]
fn sgd_block_mono<const K: usize>(
    p: &mut [f32],
    q: &mut [f32],
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    // Hoist the SIMD dispatch out of the rating loop: one level probe
    // per block. The scalar level keeps the directly-inlined mono step
    // (no fn-pointer indirection on the oracle path).
    let lvl = crate::simd::level();
    if lvl == crate::simd::SimdLevel::Scalar {
        return sgd_block_mono_with::<K, _>(
            p,
            q,
            block,
            gamma,
            lambda_p,
            lambda_q,
            sgd_step_mono::<K>,
        );
    }
    let step = crate::simd::step_fn::<K>(lvl);
    sgd_block_mono_with::<K, _>(p, q, block, gamma, lambda_p, lambda_q, step)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn sgd_block_mono_with<const K: usize, F: Fn(&mut [f32], &mut [f32], f32, f32, f32, f32) -> f32>(
    p: &mut [f32],
    q: &mut [f32],
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
    step: F,
) -> f64 {
    let mut sq_err = 0f64;
    for e in block {
        let pu = &mut p[e.u as usize * K..][..K];
        let qv = &mut q[e.v as usize * K..][..K];
        let err = step(pu, qv, e.r, gamma, lambda_p, lambda_q);
        sq_err += (err as f64) * (err as f64);
    }
    sq_err
}

/// Applies [`sgd_step`] to every rating of a structure-of-arrays block —
/// the layout [`mf_sparse::GridPartition`] stores. Semantically identical
/// to [`sgd_block`] on the AoS form of the same ratings (the per-rating
/// arithmetic is shared); the SoA loop reads three unit-stride streams,
/// so the index/value loads are dense instead of 12-byte-interleaved.
#[inline]
pub fn sgd_block_soa(
    p: &mut [f32],
    q: &mut [f32],
    k: usize,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    // SAFETY: `p`/`q` are exclusive borrows covering their buffers, so
    // the raw-pointer contract (exclusive access, in-bounds rows) holds.
    unsafe {
        sgd_block_raw_soa(
            p.as_mut_ptr(),
            q.as_mut_ptr(),
            k,
            block,
            gamma,
            lambda_p,
            lambda_q,
        )
    }
}

/// The scalar reference SoA block loop — [`sgd_step_scalar`] per rating.
#[inline]
pub fn sgd_block_soa_scalar(
    p: &mut [f32],
    q: &mut [f32],
    k: usize,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    // SAFETY: as in `sgd_block_soa`.
    unsafe {
        sgd_block_raw_soa_with(
            p.as_mut_ptr(),
            q.as_mut_ptr(),
            k,
            block,
            gamma,
            lambda_p,
            lambda_q,
            sgd_step_scalar,
        )
    }
}

/// SoA block update over raw factor pointers — the disjoint-region fast
/// path used by [`crate::shared::SharedModel::sgd_block_exclusive`].
/// Dispatches once per block.
///
/// # Safety
///
/// For the duration of the call, `p`/`q` must point to buffers of at
/// least `(max u + 1) · k` / `(max v + 1) · k` floats over the
/// users/items in `block`, and no other thread may access the factor
/// rows of any user or item appearing in `block`.
#[inline]
pub unsafe fn sgd_block_raw_soa(
    p: *mut f32,
    q: *mut f32,
    k: usize,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    dispatch_k!(
        k,
        sgd_block_raw_soa_mono(p, q, block, gamma, lambda_p, lambda_q),
        unsafe {
            sgd_block_raw_soa_with(p, q, k, block, gamma, lambda_p, lambda_q, sgd_step_scalar)
        }
    )
}

/// Monomorphized SoA raw-pointer block loop (inherits the
/// [`sgd_block_raw_soa`] safety contract). The SIMD dispatch is hoisted
/// to one probe per block; the scalar level keeps the directly-inlined
/// mono step.
#[inline(always)]
unsafe fn sgd_block_raw_soa_mono<const K: usize>(
    p: *mut f32,
    q: *mut f32,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    let lvl = crate::simd::level();
    if lvl == crate::simd::SimdLevel::Scalar {
        return unsafe {
            sgd_block_raw_soa_with(
                p,
                q,
                K,
                block,
                gamma,
                lambda_p,
                lambda_q,
                sgd_step_mono::<K>,
            )
        };
    }
    let step = crate::simd::step_fn::<K>(lvl);
    unsafe { sgd_block_raw_soa_with(p, q, K, block, gamma, lambda_p, lambda_q, step) }
}

/// [`sgd_block_soa`] pinned to a SIMD dispatch level (clamped to the
/// host) — the bench/test surface that lets one process measure every
/// reachable level side by side without re-exec'ing under different
/// `MF_SIMD` values.
#[allow(clippy::too_many_arguments)]
pub fn sgd_block_soa_at(
    level: crate::simd::SimdLevel,
    p: &mut [f32],
    q: &mut [f32],
    k: usize,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    // SAFETY: `p`/`q` are exclusive borrows covering their buffers (as
    // in `sgd_block_soa`).
    dispatch_k!(
        k,
        sgd_block_raw_soa_at_mono(level, p, q, block, gamma, lambda_p, lambda_q),
        unsafe {
            sgd_block_raw_soa_with(
                p.as_mut_ptr(),
                q.as_mut_ptr(),
                k,
                block,
                gamma,
                lambda_p,
                lambda_q,
                sgd_step_scalar,
            )
        }
    )
}

#[inline(always)]
fn sgd_block_raw_soa_at_mono<const K: usize>(
    level: crate::simd::SimdLevel,
    p: &mut [f32],
    q: &mut [f32],
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    let step = crate::simd::step_fn::<K>(level);
    // SAFETY: exclusive borrows cover the factor buffers.
    unsafe {
        sgd_block_raw_soa_with(
            p.as_mut_ptr(),
            q.as_mut_ptr(),
            K,
            block,
            gamma,
            lambda_p,
            lambda_q,
            step,
        )
    }
}

/// How many entries ahead the SoA block loop prefetches the factor rows.
/// Far enough to cover an L3 miss at ~10k-flop update granularity, near
/// enough that the prefetched lines survive until use.
const SOA_PREFETCH_AHEAD: usize = 8;

/// Best-effort prefetch of the cache line at `ptr` into all levels.
#[inline(always)]
fn prefetch_read_f32(ptr: *const f32) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint — it never faults, even on invalid
    // addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Shared SoA raw-pointer block loop, parameterized over the per-rating
/// step. The counted loop keeps the three streams in lockstep with no
/// bounds checks, and the unit-stride index streams make row lookahead
/// free: while entry `i` computes, the factor rows of entry
/// `i + SOA_PREFETCH_AHEAD` are prefetched — the random-access row
/// fetches that dominate the AoS loop's stalls on large models. (An AoS
/// loop can peek ahead too, but must drag whole 12-byte entries through
/// the load pipe to do it; here the peek reads two dense `u32` lanes.)
///
/// # Safety
///
/// Same contract as [`sgd_block_raw_soa`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn sgd_block_raw_soa_with(
    p: *mut f32,
    q: *mut f32,
    k: usize,
    block: BlockSlices<'_>,
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
    step: impl Fn(&mut [f32], &mut [f32], f32, f32, f32, f32) -> f32,
) -> f64 {
    let (rows, cols, vals) = (block.rows, block.cols, block.vals);
    let n = block.len();
    let mut sq_err = 0f64;
    // Prefetch pays for itself once a factor row covers at least a full
    // cache line; below that (k = 8: 32-byte rows) the two prefetch
    // instructions are pure overhead on an 85-flop iteration, so the
    // small-row branch takes the leaner fused-zip loop instead. `k` is a
    // monomorphization constant on the mono path, so the branch folds
    // away.
    if k * std::mem::size_of::<f32>() >= 64 {
        // Rows span multiple cache lines past k = 16; prefetching only
        // the first line left the remaining lines to demand misses —
        // measurably inverting the SoA-vs-AoS advantage at k = 64
        // (4-line rows) in the committed kernel table. Cover the whole
        // row up to 4 lines; `k` is a monomorphization constant on the
        // mono path, so the line count folds into straight-line code.
        let lines = (k * std::mem::size_of::<f32>() / 64).clamp(1, 4);
        for i in 0..n {
            if i + SOA_PREFETCH_AHEAD < n {
                // SAFETY: `i + SOA_PREFETCH_AHEAD < n` and the three
                // slices share length `n` (BlockSlices invariant).
                let (u2, v2) = unsafe {
                    (
                        *rows.get_unchecked(i + SOA_PREFETCH_AHEAD) as usize,
                        *cols.get_unchecked(i + SOA_PREFETCH_AHEAD) as usize,
                    )
                };
                for l in 0..lines {
                    prefetch_read_f32(p.wrapping_add(u2 * k + l * 16) as *const f32);
                    prefetch_read_f32(q.wrapping_add(v2 * k + l * 16) as *const f32);
                }
            }
            // SAFETY: `i < n`; factor rows are in bounds and exclusively
            // ours (caller contract).
            let (u, v, r) = unsafe {
                (
                    *rows.get_unchecked(i) as usize,
                    *cols.get_unchecked(i) as usize,
                    *vals.get_unchecked(i),
                )
            };
            let pu = unsafe { std::slice::from_raw_parts_mut(p.add(u * k), k) };
            let qv = unsafe { std::slice::from_raw_parts_mut(q.add(v * k), k) };
            let err = step(pu, qv, r, gamma, lambda_p, lambda_q);
            sq_err += (err as f64) * (err as f64);
        }
    } else {
        for ((&u, &v), &r) in rows.iter().zip(cols).zip(vals) {
            // SAFETY: factor rows are in bounds and exclusively ours
            // (caller contract).
            let pu = unsafe { std::slice::from_raw_parts_mut(p.add(u as usize * k), k) };
            let qv = unsafe { std::slice::from_raw_parts_mut(q.add(v as usize * k), k) };
            let err = step(pu, qv, r, gamma, lambda_p, lambda_q);
            sq_err += (err as f64) * (err as f64);
        }
    }
    sq_err
}

/// Block update over raw factor pointers, AoS form. Kept as the
/// reference layout the SoA baseline benchmarks compare against; the
/// trainers route through [`sgd_block_raw_soa`]. Dispatches
/// once per block like [`sgd_block`].
///
/// # Safety
///
/// For the duration of the call, `p`/`q` must point to buffers of at least
/// `(max u + 1) · k` / `(max v + 1) · k` floats over the users/items in
/// `block`, and no other thread may access the factor rows of any user or
/// item appearing in `block`.
#[inline]
pub unsafe fn sgd_block_raw(
    p: *mut f32,
    q: *mut f32,
    k: usize,
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    dispatch_k!(
        k,
        sgd_block_raw_mono(p, q, block, gamma, lambda_p, lambda_q),
        unsafe { sgd_block_raw_with(p, q, k, block, gamma, lambda_p, lambda_q, sgd_step_scalar) }
    )
}

/// Monomorphized raw-pointer block loop (see [`sgd_block_raw`] for the
/// safety contract, which this inherits).
#[inline(always)]
unsafe fn sgd_block_raw_mono<const K: usize>(
    p: *mut f32,
    q: *mut f32,
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
) -> f64 {
    let lvl = crate::simd::level();
    if lvl == crate::simd::SimdLevel::Scalar {
        return unsafe {
            sgd_block_raw_with(
                p,
                q,
                K,
                block,
                gamma,
                lambda_p,
                lambda_q,
                sgd_step_mono::<K>,
            )
        };
    }
    let step = crate::simd::step_fn::<K>(lvl);
    unsafe { sgd_block_raw_with(p, q, K, block, gamma, lambda_p, lambda_q, step) }
}

/// Shared raw-pointer block loop, parameterized over the per-rating step.
///
/// # Safety
///
/// Same contract as [`sgd_block_raw`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn sgd_block_raw_with(
    p: *mut f32,
    q: *mut f32,
    k: usize,
    block: &[Rating],
    gamma: f32,
    lambda_p: f32,
    lambda_q: f32,
    step: impl Fn(&mut [f32], &mut [f32], f32, f32, f32, f32) -> f32,
) -> f64 {
    let mut sq_err = 0f64;
    for e in block {
        // SAFETY: rows are in bounds and exclusively ours (caller
        // contract).
        let pu = unsafe { std::slice::from_raw_parts_mut(p.add(e.u as usize * k), k) };
        let qv = unsafe { std::slice::from_raw_parts_mut(q.add(e.v as usize * k), k) };
        let err = step(pu, qv, e.r, gamma, lambda_p, lambda_q);
        sq_err += (err as f64) * (err as f64);
    }
    sq_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn mono_dot_matches_scalar() {
        for &k in &MONO_DIMS {
            let p: Vec<f32> = (0..k).map(|i| 0.1 + 0.01 * i as f32).collect();
            let q: Vec<f32> = (0..k).map(|i| 0.9 - 0.005 * i as f32).collect();
            let fast = dot(&p, &q);
            let slow = dot_scalar(&p, &q);
            assert!(
                (fast - slow).abs() < 1e-4,
                "k={k}: mono {fast} vs scalar {slow}"
            );
        }
    }

    #[test]
    fn mono_step_matches_scalar_reference() {
        for &k in &MONO_DIMS {
            // Unit-scale factors (entries ~ 1/√k, like a real model init),
            // so dot products stay O(1) and the association-order drift of
            // the split-accumulator sum stays within a few f32 ulps.
            let s = 1.0 / (k as f32).sqrt();
            let p0: Vec<f32> = (0..k).map(|i| (0.3 + 0.002 * i as f32) * s).collect();
            let q0: Vec<f32> = (0..k).map(|i| (0.7 - 0.003 * i as f32) * s).collect();
            let (mut pa, mut qa) = (p0.clone(), q0.clone());
            let (mut pb, mut qb) = (p0, q0);
            let ea = sgd_step(&mut pa, &mut qa, 3.5, 0.01, 0.05, 0.07);
            let eb = sgd_step_scalar(&mut pb, &mut qb, 3.5, 0.01, 0.05, 0.07);
            assert!((ea - eb).abs() < 1e-5, "k={k}: error {ea} vs {eb}");
            for i in 0..k {
                assert!((pa[i] - pb[i]).abs() < 1e-6, "k={k} p[{i}]");
                assert!((qa[i] - qb[i]).abs() < 1e-6, "k={k} q[{i}]");
            }
        }
    }

    #[test]
    fn step_matches_hand_computation() {
        // k=2, p=(1, 0), q=(0.5, 0.5), r=2, γ=0.1, λp=0.1, λq=0.2
        let mut p = vec![1.0f32, 0.0];
        let mut q = vec![0.5f32, 0.5];
        let e = sgd_step(&mut p, &mut q, 2.0, 0.1, 0.1, 0.2);
        // e = 2 − 0.5 = 1.5
        assert!((e - 1.5).abs() < 1e-6);
        // p0 = 1 + 0.1·(1.5·0.5 − 0.1·1)   = 1.065
        // p1 = 0 + 0.1·(1.5·0.5 − 0)       = 0.075
        // q0 = 0.5 + 0.1·(1.5·1 − 0.2·0.5) = 0.64
        // q1 = 0.5 + 0.1·(1.5·0 − 0.2·0.5) = 0.49
        assert!((p[0] - 1.065).abs() < 1e-6);
        assert!((p[1] - 0.075).abs() < 1e-6);
        assert!((q[0] - 0.64).abs() < 1e-6);
        assert!((q[1] - 0.49).abs() < 1e-6);
    }

    #[test]
    fn step_direction_matches_numerical_gradient() {
        // The analytic update must agree with a finite-difference gradient
        // of the pointwise loss L = (r − p·q)² + λp·|p|² + λq·|q|².
        let k = 4;
        let p0: Vec<f32> = (0..k).map(|i| 0.3 + 0.1 * i as f32).collect();
        let q0: Vec<f32> = (0..k).map(|i| 0.7 - 0.1 * i as f32).collect();
        let (r, lp, lq) = (2.5f32, 0.05f32, 0.07f32);
        let loss = |p: &[f32], q: &[f32]| -> f64 {
            let e = r - dot(p, q);
            let np: f32 = p.iter().map(|x| x * x).sum();
            let nq: f32 = q.iter().map(|x| x * x).sum();
            (e * e + lp * np + lq * nq) as f64
        };
        let h = 1e-3f32;
        let gamma = 1e-4f32;
        let mut p = p0.clone();
        let mut q = q0.clone();
        sgd_step(&mut p, &mut q, r, gamma, lp, lq);
        for i in 0..k {
            // Numerical ∂L/∂p_i.
            let mut pp = p0.clone();
            pp[i] += h;
            let mut pm = p0.clone();
            pm[i] -= h;
            let grad = (loss(&pp, &q0) - loss(&pm, &q0)) / (2.0 * h as f64);
            // sgd_step moved p_i by −γ/2 · ∂L/∂p_i (the paper folds the
            // factor 2 of Eq. 4 into γ; both conventions minimize L).
            let moved = (p[i] - p0[i]) as f64;
            let expected = -(gamma as f64) * grad / 2.0;
            assert!(
                (moved - expected).abs() < 1e-6,
                "i={i}: moved {moved:.3e} expected {expected:.3e}"
            );
        }
    }

    #[test]
    fn repeated_steps_reduce_pointwise_error() {
        let mut p = vec![0.1f32; 8];
        let mut q = vec![0.1f32; 8];
        let mut last = f32::INFINITY;
        for _ in 0..200 {
            let e = sgd_step(&mut p, &mut q, 3.0, 0.05, 0.01, 0.01).abs();
            assert!(e <= last + 1e-3, "error should shrink: {e} > {last}");
            last = e;
        }
        assert!(
            last < 0.05,
            "should converge close to the target, got {last}"
        );
    }

    #[test]
    fn fixed_q_step_matches_full_step_on_p() {
        // With the same inputs, the fixed-Q update must move p exactly as
        // the full step does (the full step uses pre-update p in the q
        // rule, so p's own update is independent of whether q moves).
        let k = 8;
        let s = 1.0 / (k as f32).sqrt();
        let p0: Vec<f32> = (0..k).map(|i| (0.3 + 0.01 * i as f32) * s).collect();
        let q0: Vec<f32> = (0..k).map(|i| (0.8 - 0.02 * i as f32) * s).collect();
        let (mut pa, mut qa) = (p0.clone(), q0.clone());
        let mut pb = p0;
        let ea = sgd_step(&mut pa, &mut qa, 2.5, 0.05, 0.02, 0.03);
        let eb = sgd_step_fixed_q(&mut pb, &q0, 2.5, 0.05, 0.02);
        assert_eq!(ea, eb);
        assert_eq!(pa, pb);
        assert_ne!(qa, q0, "full step should have moved q");
    }

    #[test]
    fn fixed_p_step_matches_full_step_on_q() {
        let k = 16;
        let s = 1.0 / (k as f32).sqrt();
        let p0: Vec<f32> = (0..k).map(|i| (0.4 + 0.02 * i as f32) * s).collect();
        let q0: Vec<f32> = (0..k).map(|i| (0.6 - 0.01 * i as f32) * s).collect();
        let (mut pa, mut qa) = (p0.clone(), q0.clone());
        let mut qb = q0;
        let ea = sgd_step(&mut pa, &mut qa, 3.0, 0.04, 0.02, 0.05);
        let eb = sgd_step_fixed_p(&p0, &mut qb, 3.0, 0.04, 0.05);
        assert_eq!(ea, eb);
        assert_eq!(qa, qb);
    }

    #[test]
    fn fixed_q_steps_converge_to_least_squares() {
        // Single rating, k=1: the minimizer of (r − p·q)² + λp² is
        // p* = r·q / (q² + λ). Repeated fixed-Q steps must approach it.
        let (r, q, lambda) = (4.0f32, 0.8f32, 0.1f32);
        let mut p = vec![0.0f32];
        for _ in 0..500 {
            sgd_step_fixed_q(&mut p, &[q], r, 0.1, lambda);
        }
        let expect = r * q / (q * q + lambda);
        assert!((p[0] - expect).abs() < 1e-4, "p={} expect={expect}", p[0]);
    }

    #[test]
    fn block_update_accumulates_squared_error() {
        let k = 2;
        let mut p = vec![0.0f32; 2 * k];
        let mut q = vec![0.0f32; 2 * k];
        let block = vec![Rating::new(0, 0, 1.0), Rating::new(1, 1, 2.0)];
        let sq = sgd_block(&mut p, &mut q, k, &block, 0.1, 0.0, 0.0);
        // With zero-initialized factors, e = r for both entries.
        assert!((sq - (1.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn mono_block_matches_scalar_block() {
        for &k in &MONO_DIMS {
            let users = 4u32;
            let items = 5u32;
            let scale = 1.0 / (k as f32).sqrt();
            let init = |n: usize, s: f32| -> Vec<f32> {
                (0..n)
                    .map(|i| (s + 0.001 * (i % 97) as f32) * scale)
                    .collect()
            };
            let block: Vec<Rating> = (0..40)
                .map(|i| Rating::new(i % users, (i * 3) % items, 1.0 + (i % 5) as f32))
                .collect();
            let mut pa = init(users as usize * k, 0.2);
            let mut qa = init(items as usize * k, 0.3);
            let mut pb = pa.clone();
            let mut qb = qa.clone();
            let sa = sgd_block(&mut pa, &mut qa, k, &block, 0.01, 0.02, 0.03);
            let sb = sgd_block_scalar(&mut pb, &mut qb, k, &block, 0.01, 0.02, 0.03);
            assert!((sa - sb).abs() < 1e-4, "k={k}: {sa} vs {sb}");
            for (a, b) in pa.iter().zip(&pb) {
                assert!((a - b).abs() < 1e-5, "k={k} P drift");
            }
            for (a, b) in qa.iter().zip(&qb) {
                assert!((a - b).abs() < 1e-5, "k={k} Q drift");
            }
        }
    }

    #[test]
    fn soa_block_matches_aos_block_bitwise() {
        use mf_sparse::SoaRatings;
        // Same per-rating arithmetic, different storage layout: the two
        // loops must agree bit for bit, on mono and scalar dims alike.
        for k in [8usize, 16, 12, 5, 128] {
            let users = 7u32;
            let items = 9u32;
            let scale = 1.0 / (k as f32).sqrt();
            let block: Vec<Rating> = (0..60)
                .map(|i| Rating::new(i % users, (i * 7) % items, 1.0 + (i % 4) as f32))
                .collect();
            let soa = SoaRatings::from_entries(&block);
            let init = |s: f32, n: usize| -> Vec<f32> {
                (0..n)
                    .map(|i| (s + 0.003 * (i % 31) as f32) * scale)
                    .collect()
            };
            let mut pa = init(0.4, users as usize * k);
            let mut qa = init(0.6, items as usize * k);
            let mut pb = pa.clone();
            let mut qb = qa.clone();
            let aos = sgd_block(&mut pa, &mut qa, k, &block, 0.02, 0.01, 0.03);
            let soa_sq = sgd_block_soa(&mut pb, &mut qb, k, soa.as_slices(), 0.02, 0.01, 0.03);
            assert_eq!(aos, soa_sq, "k={k} squared error");
            assert_eq!(pa, pb, "k={k} P");
            assert_eq!(qa, qb, "k={k} Q");
        }
    }

    #[test]
    fn soa_scalar_reference_matches_dispatch_within_tolerance() {
        use mf_sparse::SoaRatings;
        let k = 32;
        let block: Vec<Rating> = (0..40)
            .map(|i| Rating::new(i % 5, (i * 3) % 6, 1.5 + (i % 3) as f32))
            .collect();
        let soa = SoaRatings::from_entries(&block);
        let s = 1.0 / (k as f32).sqrt();
        let init: Vec<f32> = (0..6 * k).map(|i| (0.2 + 0.001 * i as f32) * s).collect();
        let (mut pa, mut qa) = (init.clone(), init.clone());
        let (mut pb, mut qb) = (init.clone(), init);
        let fast = sgd_block_soa(&mut pa, &mut qa, k, soa.as_slices(), 0.01, 0.02, 0.02);
        let slow = sgd_block_soa_scalar(&mut pb, &mut qb, k, soa.as_slices(), 0.01, 0.02, 0.02);
        assert!((fast - slow).abs() < 1e-4);
        for (a, b) in pa.iter().zip(&pb) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn raw_block_matches_safe_block() {
        let k = 16;
        let (users, items) = (6usize, 6usize);
        let mut pa: Vec<f32> = (0..users * k).map(|i| (i % 13) as f32 * 0.01).collect();
        let mut qa: Vec<f32> = (0..items * k).map(|i| (i % 7) as f32 * 0.02).collect();
        let mut pb = pa.clone();
        let mut qb = qa.clone();
        let block: Vec<Rating> = (0..24)
            .map(|i| Rating::new((i % 6) as u32, ((i * 5) % 6) as u32, 2.0))
            .collect();
        let safe = sgd_block(&mut pa, &mut qa, k, &block, 0.05, 0.01, 0.01);
        let raw = unsafe {
            sgd_block_raw(
                pb.as_mut_ptr(),
                qb.as_mut_ptr(),
                k,
                &block,
                0.05,
                0.01,
                0.01,
            )
        };
        assert_eq!(safe, raw);
        assert_eq!(pa, pb);
        assert_eq!(qa, qb);
    }
}
