//! The kernel-throughput model (paper Figs. 3a and 7).
//!
//! Ground truth has three regimes, matching what the paper measures on a
//! Quadro P4000:
//!
//! 1. **Latency-bound** (tiny blocks): execution time is a constant
//!    `t_floor` — the device cannot finish a launch faster no matter how
//!    little work it holds, so *throughput is linear in block size* and
//!    terrible for small blocks. This is the mechanism behind
//!    Observation 1.
//! 2. **Log ramp**: throughput `a·ln n + b`, the shape the paper fits —
//!    *"the growth trend of the logarithmic function … is more consistent
//!    with the trend in Figure 7"*. Anchored so throughput is half of
//!    peak at `kernel_half_size` and reaches peak at 8× that size.
//! 3. **Saturated**: time is linear at peak throughput.
//!
//! The resulting *time* curve — flat, then slowly rising, then linear —
//! is what a single straight line (Qilin) genuinely cannot fit, which is
//! the misfit the paper's tailored cost model corrects (Table II).
//!
//! Worker count scales throughput sublinearly — `(W / 128)^η` — capped by
//! a memory-bandwidth ceiling.

use serde::{Deserialize, Serialize};

use mf_des::SimTime;

use crate::spec::GpuSpec;

/// Block size multiple of the knee at which the ramp reaches peak.
const SATURATION_MULTIPLE: f64 = 8.0;

/// Kernel execution-time model for one device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelModel {
    /// Ramp slope (updates/s per ln-point).
    a: f64,
    /// Ramp intercept.
    b: f64,
    /// Saturated throughput at the reference worker count, updates/s.
    peak: f64,
    /// Block size below which execution is latency-bound (time constant).
    /// Chosen as the point where the ramp's elasticity reaches 1, so the
    /// time curve is monotone.
    floor_points: f64,
    /// Worker multiplier `(W/128)^η`, pre-computed.
    worker_scale: f64,
    /// Memory-bandwidth ceiling, updates/s.
    ceiling: f64,
    /// Fixed kernel-launch latency per block, seconds.
    launch_latency: f64,
}

impl KernelModel {
    /// Builds the model for a device spec (including its current
    /// `parallel_workers`).
    pub fn new(spec: &GpuSpec) -> KernelModel {
        let ratio = spec.parallel_workers as f64 / GpuSpec::REFERENCE_WORKERS as f64;
        let peak = spec.peak_updates_per_sec;
        let half = spec.kernel_half_size.max(2.0);
        // a·ln(half) + b = peak/2 and a·ln(8·half) + b = peak.
        let a = peak / (2.0 * SATURATION_MULTIPLE.ln());
        let b = peak / 2.0 - a * half.ln();
        // Below the elasticity-1 point (ramp value == a) the time curve of
        // n / (a·ln n + b) would *decrease* with n; physically that region
        // is latency-bound, so time is pinned constant there.
        let floor_points = ((a - b) / a).exp();
        KernelModel {
            a,
            b,
            peak,
            floor_points,
            worker_scale: ratio.powf(spec.worker_scaling_exponent),
            ceiling: spec.max_updates_per_sec,
            launch_latency: spec.kernel_launch_latency_secs,
        }
    }

    /// The ramp/peak throughput at an *effective* (≥ floor) size.
    fn eff_throughput(&self, points: f64) -> f64 {
        let ramp = (self.a * points.ln() + self.b).min(self.peak);
        (ramp * self.worker_scale).min(self.ceiling)
    }

    /// Raw modeled execution time (without launch latency).
    fn raw_time(&self, points: f64) -> f64 {
        let eff = points.max(self.floor_points);
        eff / self.eff_throughput(eff)
    }

    /// Modeled throughput for a block of `points` ratings, in updates/s —
    /// the Fig. 3(a)/7 "update speed" axis. Linear in size below the
    /// latency floor, log ramp to peak above it.
    pub fn throughput(&self, points: f64) -> f64 {
        if points <= 0.0 {
            return 0.0;
        }
        points / self.raw_time(points)
    }

    /// Modeled kernel execution time for a block of `points` ratings.
    pub fn time_for(&self, points: u64) -> SimTime {
        if points == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(self.raw_time(points as f64) + self.launch_latency)
    }

    /// The saturated (asymptotic) throughput of this configuration.
    pub fn saturated_throughput(&self) -> f64 {
        (self.peak * self.worker_scale).min(self.ceiling)
    }

    /// The latency-bound size threshold (diagnostics, tests).
    pub fn floor_points(&self) -> f64 {
        self.floor_points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_with_workers(w: u32) -> KernelModel {
        KernelModel::new(&GpuSpec::default().with_workers(w))
    }

    #[test]
    fn throughput_saturates_with_block_size() {
        let m = model_with_workers(128);
        let half = GpuSpec::default().kernel_half_size;
        // At the knee, throughput is half of peak.
        assert!((m.throughput(half) - 65e6).abs() / 65e6 < 1e-9);
        // Beyond 8x the knee: exactly peak.
        assert_eq!(m.throughput(10.0 * half), 130e6);
        // Small blocks are far below peak — Observation 1.
        assert!(m.throughput(0.05 * half) < 0.15 * 130e6);
    }

    #[test]
    fn throughput_monotone_in_block_size() {
        let m = model_with_workers(128);
        let mut prev = 0.0;
        for exp in 1..9 {
            let t = m.throughput(10f64.powi(exp));
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn time_is_monotone_in_block_size() {
        let m = model_with_workers(128);
        let mut prev = 0.0;
        for i in 1..200 {
            let t = m.time_for(i * 25_000).as_secs();
            assert!(
                t >= prev - 1e-12,
                "time decreased at {} points: {t} < {prev}",
                i * 25_000
            );
            prev = t;
        }
    }

    #[test]
    fn tiny_blocks_are_latency_bound() {
        let m = model_with_workers(128);
        let floor = m.floor_points();
        assert!(floor > 1e3, "floor should be a nontrivial size");
        // Anywhere below the floor, time is the same constant.
        let t_small = m.time_for((0.1 * floor) as u64).as_secs();
        let t_mid = m.time_for((0.9 * floor) as u64).as_secs();
        assert!((t_small - t_mid).abs() / t_mid < 1e-9);
        // So throughput scales linearly with size there.
        let th_small = m.throughput(0.1 * floor);
        let th_mid = m.throughput(0.9 * floor);
        assert!((th_mid / th_small - 9.0).abs() < 0.01);
    }

    #[test]
    fn time_curve_defies_a_single_line() {
        // The Table II mechanism: a line fitted through the large-block
        // regime badly underestimates small-block time.
        let m = model_with_workers(128);
        let half = GpuSpec::default().kernel_half_size;
        // "Qilin" line through two saturated points (slope 1/peak).
        let n1 = 10.0 * half;
        let n2 = 20.0 * half;
        let t1 = m.time_for(n1 as u64).as_secs();
        let t2 = m.time_for(n2 as u64).as_secs();
        let slope = (t2 - t1) / (n2 - n1);
        let intercept = t1 - slope * n1;
        let small = 0.05 * half;
        let linear_pred = slope * small + intercept;
        let truth = m.time_for(small as u64).as_secs();
        assert!(
            truth > 3.0 * linear_pred.max(1e-9),
            "latency floor must defeat the line: truth {truth:.2e} vs line {linear_pred:.2e}"
        );
    }

    #[test]
    fn worker_scaling_is_sublinear_and_capped() {
        let big_block = 10e6;
        let t32 = model_with_workers(32).throughput(big_block);
        let t128 = model_with_workers(128).throughput(big_block);
        let t512 = model_with_workers(512).throughput(big_block);
        assert!(t32 < t128 && t128 < t512, "more workers, more throughput");
        // Sublinear: 4x workers < 4x throughput.
        assert!(t128 / t32 < 4.0);
        // 512 workers hit the bandwidth ceiling.
        assert_eq!(t512, 350e6);
    }

    #[test]
    fn crossover_with_16_thread_cpu() {
        // The Fig. 10 shape: a 16-thread CPU at ~5 M updates/s/thread
        // (80 M/s) beats the GPU at 32 workers but loses at ≥128 on
        // saturated blocks.
        let cpu = 16.0 * 5e6;
        let big = 5e6;
        assert!(model_with_workers(32).throughput(big) < cpu);
        assert!(model_with_workers(128).throughput(big) > cpu);
        assert!(model_with_workers(512).throughput(big) > 2.0 * cpu);
    }

    #[test]
    fn time_includes_launch_latency() {
        let m = model_with_workers(128);
        // A single point takes at least the launch latency.
        assert!(m.time_for(1).as_secs() >= 10e-6);
        assert_eq!(m.time_for(0), SimTime::ZERO);
    }

    #[test]
    fn time_for_large_block_matches_throughput() {
        let m = model_with_workers(128);
        let pts = 50_000_000u64;
        let t = m.time_for(pts).as_secs();
        let implied = pts as f64 / t;
        assert!((implied - m.throughput(pts as f64)).abs() / implied < 0.01);
    }

    #[test]
    fn scaled_spec_moves_knee() {
        let full = KernelModel::new(&GpuSpec::default());
        let scaled = KernelModel::new(&GpuSpec::default().scaled_down(100.0));
        // At 1/100 of the original knee, the scaled device is already at
        // half peak while the full device sits in its latency-bound zone.
        let knee_small = GpuSpec::default().kernel_half_size / 100.0;
        assert!((scaled.throughput(knee_small) - 65e6).abs() / 65e6 < 1e-9);
        assert!(full.throughput(knee_small) < 15e6);
        // The floor scales with the knee.
        assert!(
            (scaled.floor_points() - full.floor_points() / 100.0).abs() / scaled.floor_points()
                < 1e-9
        );
    }
}
