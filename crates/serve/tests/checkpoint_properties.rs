//! Property tests for the `MFCK` checkpoint format: round-trips are
//! bit-identical for arbitrary geometry (including NaN/∞ payload bits),
//! and *every* single-byte corruption anywhere in the file is rejected —
//! the header checksum covers the header, each section checksum covers
//! its payload, and flips inside a stored checksum disagree with the
//! recomputed digest.

use mf_serve::checkpoint::{self, CheckpointMeta};
use mf_sgd::Model;
use proptest::prelude::*;

/// Builds a model whose factor buffers carry arbitrary *bit patterns*
/// (reinterpreted u32s), so the round-trip property covers NaNs,
/// infinities, and denormals — everything `PartialEq` on floats would
/// hide.
fn model_from_bits(m: u32, n: u32, k: usize, bits: &[u32]) -> Model {
    let need = (m as usize + n as usize) * k;
    let buf: Vec<f32> = (0..need)
        .map(|i| f32::from_bits(bits[i % bits.len()].wrapping_add(i as u32)))
        .collect();
    let (p, q) = buf.split_at(m as usize * k);
    Model::from_parts(m, n, k, p.to_vec(), q.to_vec())
}

fn bits_of(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn round_trip_is_bit_identical(
        m in 1u32..40,
        n in 1u32..40,
        k in 1usize..20,
        seed in 0u64..u64::MAX,
        epoch in 0u64..u64::MAX,
        bits in prop::collection::vec(0u32..u32::MAX, 1..64),
    ) {
        let model = model_from_bits(m, n, k, &bits);
        let meta = CheckpointMeta { seed, epoch };
        let mut buf = Vec::new();
        checkpoint::write_checkpoint(&model, meta, &mut buf).unwrap();
        let back = checkpoint::read_checkpoint(&buf[..]).unwrap();
        prop_assert_eq!(back.meta, meta);
        prop_assert_eq!(
            (back.model.nrows(), back.model.ncols(), back.model.k()),
            (m, n, k)
        );
        prop_assert_eq!(bits_of(back.model.p_raw()), bits_of(model.p_raw()));
        prop_assert_eq!(bits_of(back.model.q_raw()), bits_of(model.q_raw()));
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        m in 1u32..12,
        n in 1u32..12,
        k in 1usize..10,
        flip_pos_raw in 0u64..u64::MAX,
        flip_bit in 0u8..8,
        bits in prop::collection::vec(0u32..u32::MAX, 1..16),
    ) {
        let model = model_from_bits(m, n, k, &bits);
        let meta = CheckpointMeta { seed: 1, epoch: 2 };
        let mut buf = Vec::new();
        checkpoint::write_checkpoint(&model, meta, &mut buf).unwrap();
        let at = (flip_pos_raw % buf.len() as u64) as usize;
        buf[at] ^= 1 << flip_bit;
        // A flipped byte may surface as any error variant (bad magic,
        // bad version, bad geometry, checksum mismatch, or truncation-
        // style I/O if a length field grew) — but never as a clean load.
        prop_assert!(
            checkpoint::read_checkpoint(&buf[..]).is_err(),
            "flip at byte {at} bit {flip_bit} loaded cleanly"
        );
    }

    #[test]
    fn truncation_at_any_point_is_detected(
        m in 1u32..10,
        n in 1u32..10,
        k in 1usize..8,
        cut_raw in 0u64..u64::MAX,
    ) {
        let model = Model::init(m, n, k, 5);
        let mut buf = Vec::new();
        checkpoint::write_checkpoint(&model, CheckpointMeta { seed: 0, epoch: 0 }, &mut buf)
            .unwrap();
        let cut = (cut_raw % buf.len() as u64) as usize;
        prop_assert!(checkpoint::read_checkpoint(&buf[..cut]).is_err());
    }
}
