//! Out-of-core training, end to end: the training matrix is spilled to
//! an on-disk block arena and trained through a byte-budgeted LRU block
//! cache that holds only a quarter of it — and the run is
//! **bit-identical** to the fully resident one.
//!
//! The demo:
//! * generates the `spill_scale` dataset (large enough that its
//!   partition wire bytes dwarf the cache budget),
//! * trains it fully in RAM on the real-thread exclusive runtime,
//! * trains it again spill-backed at a quarter-of-the-data budget —
//!   same scheduler, same mode — and prints the block cache's counters,
//! * asserts the factors match bit for bit and the RMSE probe series
//!   is exactly equal (parity, not "close").
//!
//! The cache budget honors `MF_SPILL_BUDGET` (binary suffixes:
//! `MF_SPILL_BUDGET=256k cargo run --release --example spill_train`);
//! any budget works — when the pinned working set exceeds it, the cache
//! runs over budget rather than stall, so even `MF_SPILL_BUDGET=1`
//! makes forward progress.
//!
//! Run with: `cargo run --release --example spill_train`

use hsgd_star::hetero::layout::uniform_layout;
use hsgd_star::hetero::runtime::{run_training_real, ExecMode};
use hsgd_star::hetero::scheduler::UniformScheduler;
use hsgd_star::hetero::{train_out_of_core_real, CostModelKind, CpuSpec, DevicePool, HeteroConfig};
use hsgd_star::sgd::{HyperParams, LearningRate};
use hsgd_star::sparse::{arena, Rating, RealFs};
use std::sync::Arc;

fn main() {
    let ds = hsgd_star::data::generator::generate(&hsgd_star::data::GeneratorConfig::spill_scale(
        "spill_train",
        23,
    ));
    let cfg = HeteroConfig {
        hyper: HyperParams {
            k: 16,
            lambda_p: 0.05,
            lambda_q: 0.05,
            gamma: 0.01,
            schedule: LearningRate::Fixed,
        },
        nc: 2,
        ng: 0,
        gpu: hsgd_star::gpu::GpuSpec::quadro_p4000().scaled_down(100.0),
        cpu: CpuSpec::default().scaled_down(100.0),
        iterations: 4,
        seed: 11,
        dynamic_scheduling: true,
        cost_model: CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    let (train, test) = (&ds.train, &ds.test);
    let total = train.nnz() * Rating::WIRE_BYTES;
    let budget = arena::budget_from_env(total / 4);
    println!(
        "dataset: {} users × {} items, {} train ratings ({:.2} MB on the wire)",
        train.nrows(),
        train.ncols(),
        train.nnz(),
        total as f64 / 1e6
    );
    println!(
        "cache budget: {:.2} MB ({}% of the partition)",
        budget as f64 / 1e6,
        budget * 100 / total
    );

    let spec = uniform_layout(train, 8, 6);
    let pool = || DevicePool {
        cpu_workers: cfg.nc,
        gpus: vec![],
        gpu_start: vec![],
    };

    println!("\n== fully in RAM (real threads, exclusive) ==");
    let in_ram = run_training_real(
        train,
        test,
        UniformScheduler::new(spec.clone(), cfg.iterations, true),
        pool(),
        &cfg,
        ExecMode::Exclusive,
        None,
        "spill_train/in-ram",
    );
    println!(
        "in-RAM: {:.3}s, RMSE {:.4}",
        in_ram.report.virtual_secs, in_ram.report.final_test_rmse
    );

    println!("\n== spill-backed (block arena + LRU cache + prefetch) ==");
    let dir = hsgd_star::hetero::spill::scratch_dir("spill_train_example");
    let spilled = train_out_of_core_real(
        train,
        test,
        UniformScheduler::new(spec.clone(), cfg.iterations, true),
        pool(),
        &cfg,
        ExecMode::Exclusive,
        Arc::new(RealFs),
        &dir,
        budget,
        None,
        "spill_train/spill",
    )
    .expect("out-of-core run");
    let _ = std::fs::remove_dir_all(&dir);
    let c = spilled
        .report
        .spill
        .expect("spilled run reports cache counters");
    println!(
        "spilled: {:.3}s, RMSE {:.4}",
        spilled.report.virtual_secs, spilled.report.final_test_rmse
    );
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate), {} evictions, {:.2} MB read back at {:.0} MB/s",
        c.hits,
        c.misses,
        c.hit_rate() * 100.0,
        c.evictions,
        c.bytes_read as f64 / 1e6,
        c.io_bytes_per_sec() / 1e6
    );

    assert_eq!(
        in_ram.model, spilled.model,
        "spill-backed factors must be bit-identical to the in-RAM run"
    );
    let probes = |r: &hsgd_star::hetero::RunReport| -> Vec<f64> {
        r.rmse_series.iter().map(|&(_, x)| x).collect()
    };
    assert_eq!(
        probes(&in_ram.report),
        probes(&spilled.report),
        "RMSE probe series must match exactly"
    );
    assert!(c.misses > 0, "the arena was never read — nothing spilled");
    println!("\nfactors bit-identical and RMSE series exactly equal ✓");
}
