//! The PCIe transfer-speed model (paper Fig. 6).
//!
//! Measured transfer speed on the paper's testbed grows steeply for small
//! payloads (launch overhead and write-combining dominate) and plateaus at
//! the bus limit. The paper models the ramp as `a·√(log|R|) + b`; our
//! ground-truth curve uses exactly that family, anchored at the two
//! calibration points visible in Fig. 6 — (64 KB, 2.5 GB/s) and
//! (256 MB, 12.5 GB/s) — and clamped to the plateau beyond saturation.

use serde::{Deserialize, Serialize};

use mf_des::SimTime;

use crate::spec::GpuSpec;

/// Direction of a PCIe transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Host (CPU) to device (GPU) — the paper's `f^{c⇒g}`.
    HostToDevice,
    /// Device to host — `f^{g⇒c}`.
    DeviceToHost,
}

/// A fitted `speed(bytes) = a·√(log₂ bytes) + b` ramp with a plateau.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    a: f64,
    b: f64,
    /// Plateau bandwidth in bytes/second.
    peak_bps: f64,
    /// Bytes beyond which the plateau applies.
    saturation_bytes: f64,
    /// Floor so degenerate tiny transfers never divide by ≤0 speed.
    min_bps: f64,
}

impl TransferModel {
    /// Builds the model from two anchor points `(bytes, GB/s)` and a peak.
    pub fn from_anchors(
        small: (f64, f64),
        saturation: (f64, f64),
        peak_gbps: f64,
    ) -> TransferModel {
        let (s1, v1) = small;
        let (s2, v2) = saturation;
        assert!(s1 > 1.0 && s2 > s1, "anchor sizes must grow");
        let x1 = s1.log2().sqrt();
        let x2 = s2.log2().sqrt();
        let a = (v2 - v1) / (x2 - x1);
        let b = v1 - a * x1;
        TransferModel {
            a,
            b,
            peak_bps: peak_gbps * 1e9,
            saturation_bytes: s2,
            min_bps: 0.05e9,
        }
    }

    /// The H2D model implied by a [`GpuSpec`].
    pub fn host_to_device(spec: &GpuSpec) -> TransferModel {
        TransferModel::from_anchors(
            (spec.pcie_small_bytes, spec.pcie_small_gbps),
            (spec.pcie_saturation_bytes, spec.pcie_peak_gbps),
            spec.pcie_peak_gbps,
        )
    }

    /// The D2H model implied by a [`GpuSpec`] (slightly lower plateau, as
    /// on real hardware and in Fig. 6(b)).
    pub fn device_to_host(spec: &GpuSpec) -> TransferModel {
        let ratio = spec.pcie_d2h_peak_gbps / spec.pcie_peak_gbps;
        TransferModel::from_anchors(
            (spec.pcie_small_bytes, spec.pcie_small_gbps * ratio),
            (spec.pcie_saturation_bytes, spec.pcie_d2h_peak_gbps),
            spec.pcie_d2h_peak_gbps,
        )
    }

    /// Modeled transfer speed for a payload of `bytes`, in bytes/second.
    pub fn speed_bps(&self, bytes: f64) -> f64 {
        if bytes <= 1.0 {
            return self.min_bps;
        }
        let ramp = if bytes >= self.saturation_bytes {
            self.peak_bps
        } else {
            (self.a * bytes.log2().sqrt() + self.b) * 1e9
        };
        ramp.clamp(self.min_bps, self.peak_bps)
    }

    /// Modeled transfer speed in GB/s (the Fig. 6 axis).
    pub fn speed_gbps(&self, bytes: f64) -> f64 {
        self.speed_bps(bytes) / 1e9
    }

    /// Modeled time to move `bytes` across the bus.
    pub fn time_for(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_secs(bytes as f64 / self.speed_bps(bytes as f64))
    }
}

/// Convenience: both directions derived from one spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieBus {
    /// Host-to-device model.
    pub h2d: TransferModel,
    /// Device-to-host model.
    pub d2h: TransferModel,
}

impl PcieBus {
    /// Builds both directions from a device spec.
    pub fn new(spec: &GpuSpec) -> PcieBus {
        PcieBus {
            h2d: TransferModel::host_to_device(spec),
            d2h: TransferModel::device_to_host(spec),
        }
    }

    /// Time for a transfer in `dir`.
    pub fn time_for(&self, dir: Direction, bytes: u64) -> SimTime {
        match dir {
            Direction::HostToDevice => self.h2d.time_for(bytes),
            Direction::DeviceToHost => self.d2h.time_for(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferModel {
        TransferModel::host_to_device(&GpuSpec::default())
    }

    #[test]
    fn anchors_are_reproduced() {
        let m = model();
        assert!((m.speed_gbps(64.0 * 1024.0) - 2.5).abs() < 0.01);
        assert!((m.speed_gbps(256.0 * 1024.0 * 1024.0) - 12.5).abs() < 0.01);
    }

    #[test]
    fn speed_is_monotone_in_size() {
        let m = model();
        let sizes = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];
        for w in sizes.windows(2) {
            assert!(
                m.speed_gbps(w[1]) >= m.speed_gbps(w[0]) - 1e-12,
                "speed should not decrease with size"
            );
        }
    }

    #[test]
    fn plateau_beyond_saturation() {
        let m = model();
        assert_eq!(m.speed_gbps(1e9), 12.5);
        assert_eq!(m.speed_gbps(1e10), 12.5);
    }

    #[test]
    fn small_transfers_cannot_exploit_bandwidth() {
        // The Observation-1 mechanism: shipping 64 KB takes far longer per
        // byte than shipping 256 MB.
        let m = model();
        let per_byte_small = m.time_for(64 * 1024).as_secs() / (64.0 * 1024.0);
        let per_byte_big = m.time_for(256 * 1024 * 1024).as_secs() / (256.0 * 1024.0 * 1024.0);
        assert!(per_byte_small > 4.0 * per_byte_big);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(model().time_for(0), SimTime::ZERO);
    }

    #[test]
    fn d2h_slower_than_h2d_at_peak() {
        let bus = PcieBus::new(&GpuSpec::default());
        let big = 1u64 << 30;
        assert!(
            bus.time_for(Direction::DeviceToHost, big) > bus.time_for(Direction::HostToDevice, big)
        );
    }

    #[test]
    fn time_scales_roughly_linearly_when_saturated() {
        let m = model();
        let t1 = m.time_for(1 << 30).as_secs();
        let t2 = m.time_for(1 << 31).as_secs();
        assert!((t2 / t1 - 2.0).abs() < 0.01);
    }
}
