//! A small std-only streaming 64-bit hash for on-disk checksums.
//!
//! This is the XXH64 algorithm (Collet's xxHash, 64-bit variant) written
//! out in ~100 lines: four parallel accumulators over 32-byte stripes, a
//! rotate-multiply round function, and a final avalanche. It is *not* a
//! cryptographic hash — the on-disk checksums defend against bit rot,
//! truncation, and transport corruption, not against an adversary — but
//! it detects every single-byte flip (the property the checkpoint tests
//! pin) and its throughput is far above the disk bandwidth the reader
//! streams at.
//!
//! Shared by every `MFCK`-family format: the v1/v2 checkpoint and delta
//! records in `mf-serve` and the v3 block arena in [`crate::arena`]. It
//! lives in `mf-sparse` (the lowest crate that persists data) so both
//! layers hash with the same implementation. The code is deliberately
//! dependency-free so the workspace stays buildable in the registry-less
//! environment; the test vectors below pin the exact output so the
//! on-disk format (`docs/FORMAT.md`) is reproducible by any conforming
//! XXH64 implementation.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Streaming 64-bit hasher. Feed bytes with [`Xxh64::update`] in any
/// chunking — the digest depends only on the byte stream — and finish
/// with [`Xxh64::digest`].
#[derive(Debug, Clone)]
pub struct Xxh64 {
    /// The four stripe accumulators.
    acc: [u64; 4],
    /// Holds a partial 32-byte stripe between `update` calls.
    buf: [u8; 32],
    /// Valid bytes in `buf`.
    buf_len: usize,
    /// Total bytes consumed.
    total: u64,
    seed: u64,
}

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(hash: u64, acc: u64) -> u64 {
    (hash ^ round(0, acc))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

impl Xxh64 {
    /// A fresh hasher with the given seed (the checkpoint format uses
    /// seed 0).
    pub fn new(seed: u64) -> Xxh64 {
        Xxh64 {
            acc: [
                seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2),
                seed.wrapping_add(PRIME_2),
                seed,
                seed.wrapping_sub(PRIME_1),
            ],
            buf: [0; 32],
            buf_len: 0,
            total: 0,
            seed,
        }
    }

    /// Consumes one full 32-byte stripe.
    #[inline]
    fn consume_stripe(&mut self, stripe: &[u8]) {
        debug_assert_eq!(stripe.len(), 32);
        for (i, a) in self.acc.iter_mut().enumerate() {
            *a = round(*a, read_u64(&stripe[i * 8..]));
        }
    }

    /// Feeds `data` into the hash. Chunking is irrelevant: any split of
    /// the same byte stream yields the same digest.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total += data.len() as u64;
        // Top up a partial stripe first.
        if self.buf_len > 0 {
            let take = (32 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 32 {
                let stripe = self.buf;
                self.consume_stripe(&stripe);
                self.buf_len = 0;
            }
        }
        // Whole stripes straight from the input.
        while data.len() >= 32 {
            self.consume_stripe(&data[..32]);
            data = &data[32..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash over everything fed so far. The hasher may keep
    /// receiving `update`s afterwards (digest is non-destructive).
    pub fn digest(&self) -> u64 {
        let mut h = if self.total >= 32 {
            let [v1, v2, v3, v4] = self.acc;
            let mut h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = merge_round(h, v1);
            h = merge_round(h, v2);
            h = merge_round(h, v3);
            h = merge_round(h, v4);
            h
        } else {
            self.seed.wrapping_add(PRIME_5)
        };
        h = h.wrapping_add(self.total);
        // The buffered tail (< 32 bytes).
        let mut rest = &self.buf[..self.buf_len];
        while rest.len() >= 8 {
            h ^= round(0, read_u64(rest));
            h = h
                .rotate_left(27)
                .wrapping_mul(PRIME_1)
                .wrapping_add(PRIME_4);
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            h ^= (read_u32(rest) as u64).wrapping_mul(PRIME_1);
            h = h
                .rotate_left(23)
                .wrapping_mul(PRIME_2)
                .wrapping_add(PRIME_3);
            rest = &rest[4..];
        }
        for &b in rest {
            h ^= (b as u64).wrapping_mul(PRIME_5);
            h = h.rotate_left(11).wrapping_mul(PRIME_1);
        }
        // Avalanche.
        h ^= h >> 33;
        h = h.wrapping_mul(PRIME_2);
        h ^= h >> 29;
        h = h.wrapping_mul(PRIME_3);
        h ^= h >> 32;
        h
    }
}

/// One-shot hash of a byte slice with seed 0 — the checksum function of
/// the checkpoint format (`docs/FORMAT.md`).
pub fn xxh64(data: &[u8]) -> u64 {
    let mut h = Xxh64::new(0);
    h.update(data);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference digests from the canonical xxHash implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(xxh64(b""), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a"), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc"), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn seed_changes_digest() {
        let mut a = Xxh64::new(0);
        let mut b = Xxh64::new(1);
        a.update(b"hello world");
        b.update(b"hello world");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn chunking_is_irrelevant() {
        // Long enough to cross several stripes; split at awkward points.
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = xxh64(&data);
        for splits in [vec![1, 31, 32, 63, 500], vec![999], vec![32, 32, 32]] {
            let mut h = Xxh64::new(0);
            let mut rest = &data[..];
            for s in splits {
                let (head, tail) = rest.split_at(s.min(rest.len()));
                h.update(head);
                rest = tail;
            }
            h.update(rest);
            assert_eq!(h.digest(), whole);
        }
    }

    #[test]
    fn single_byte_flips_change_digest() {
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        let base = xxh64(&data);
        for at in [0usize, 7, 31, 32, 100, 255] {
            let mut flipped = data.clone();
            flipped[at] ^= 0x40;
            assert_ne!(xxh64(&flipped), base, "flip at {at} undetected");
        }
    }

    #[test]
    fn digest_is_non_destructive() {
        let mut h = Xxh64::new(0);
        h.update(b"abc");
        let d1 = h.digest();
        assert_eq!(d1, h.digest());
        h.update(b"def");
        assert_eq!(h.digest(), xxh64(b"abcdef"));
    }
}
