//! Vendored offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *small* slice of the `rand` API its code actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`] — a deterministic,
//!   platform-independent 64-bit generator (SplitMix64),
//! * [`Rng::random`] — uniform samples for the primitive types the
//!   trainers draw (`f32`, `f64`, and the integer widths),
//! * [`seq::SliceRandom::shuffle`] — an in-place Fisher–Yates shuffle.
//!
//! Determinism matters more than statistical perfection here: every
//! experiment in the workspace is seeded, and the discrete-event
//! simulation promises bit-for-bit reproducible runs, so `StdRng` must
//! produce the same stream on every platform. SplitMix64 is a well-known
//! 64-bit mixer (Steele et al., "Fast splittable pseudorandom number
//! generators") with full period over its 64-bit state — more than
//! adequate for sampling synthetic datasets and shuffling training data.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! let mut rng2 = StdRng::seed_from_u64(42);
//! assert_eq!(rng.random::<u64>(), { rng2.random::<f64>(); rng2.random::<u64>() });
//! ```

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T`: floats in `[0, 1)`, integers
    /// over their full range, `bool` with probability 1/2.
    fn random<T: SampleUniformUnit>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that [`Rng::random`] can produce.
pub trait SampleUniformUnit: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformUnit for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformUnit for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleUniformUnit for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniformUnit for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleUniformUnit for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl SampleUniformUnit for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: SplitMix64.
    ///
    /// Fixed algorithm (unlike upstream `rand`, which reserves the right to
    /// change `StdRng` between versions) so seeded experiments reproduce
    /// bit-for-bit forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`. Deterministic for a given
        /// seed and slice length.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is ≤ len/2^64 — immaterial for shuffling
                // training data, and keeps the stream platform-stable.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "seed 5 should not produce the identity permutation"
        );
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
