//! Virtual devices: CPU workers and the GPU adapter.
//!
//! Both execute *real* SGD arithmetic on the shared model; only durations
//! are modeled. CPU workers process a task's blocks in storage order at
//! the flat Observation-2 throughput; GPU workers delegate to
//! [`gpu_sim::GpuDevice`], which accounts PCIe transfers and the 3-stream
//! pipeline and runs the SIMT kernel.

use std::sync::Arc;

use mf_des::SimTime;
use mf_sgd::{kernel, HyperParams, Model, SharedModel};
use mf_sparse::GridPartition;

use crate::config::CpuSpec;
use crate::executor::{Device, DeviceCompletion, DeviceHealth, HealthCell};
use crate::scheduler::Task;

/// Relative amplitude of the deterministic execution-time jitter applied
/// to every task. Real hardware never repeats a block in exactly the same
/// time (cache state, frequency scaling, contention); modeling a few
/// percent of variance also de-synchronizes the event loop the way real
/// jitter de-synchronizes threads, preventing artificial completion
/// convoys that a perfectly deterministic duration model would create.
pub const TIME_JITTER: f64 = 0.05;

/// A deterministic jitter factor in `[1 − amp, 1 + amp]`, hashed from the
/// task's identity and pass number (splitmix64 finalizer).
fn jitter_factor(task: &Task, salt: u64, amp: f64) -> f64 {
    let b = task.blocks[0];
    let mut x = (b.row as u64) << 40 ^ (b.col as u64) << 20 ^ task.pass as u64 ^ salt << 1;
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * unit - 1.0)
}

/// A CPU worker thread (virtual).
#[derive(Debug, Clone, Copy)]
pub struct CpuWorker {
    /// Performance description.
    pub spec: CpuSpec,
}

impl CpuWorker {
    /// Executes `task` on `model`, returning `(duration, Σ err²)`.
    pub fn process(
        &self,
        model: &mut Model,
        part: &GridPartition,
        task: &Task,
        gamma: f32,
        hyper: &HyperParams,
    ) -> (SimTime, f64) {
        let mut sq = 0f64;
        for &b in &task.blocks {
            for e in part.block(b).iter() {
                let (p, q) = model.pq_rows_mut(e.u, e.v);
                let err = kernel::sgd_step(p, q, e.r, gamma, hyper.lambda_p, hyper.lambda_q);
                sq += (err as f64) * (err as f64);
            }
        }
        let secs = self.spec.time_secs(task.points) * jitter_factor(task, 0x0c9, TIME_JITTER);
        (SimTime::from_secs(secs), sq)
    }
}

impl Device for CpuWorker {
    fn queue_depth(&self) -> usize {
        1
    }

    fn process(
        &mut self,
        now: SimTime,
        model: &mut Model,
        part: &GridPartition,
        task: &Task,
        gamma: f32,
        hyper: &HyperParams,
    ) -> DeviceCompletion {
        let (dur, _sq) = CpuWorker::process(self, model, part, task, gamma, hyper);
        DeviceCompletion {
            done: now + dur,
            busy_secs: dur.as_secs(),
            cost: None,
        }
    }
}

/// A GPU worker (virtual), wrapping the simulator device.
#[derive(Debug)]
pub struct GpuWorker {
    /// The simulated device.
    pub device: gpu_sim::GpuDevice,
    /// When true, the entire problem (R, P, Q) is resident in device
    /// memory — the cuMF single-device regime used by GPU-Only — and
    /// per-task transfers are free after the initial bulk load.
    pub resident_all: bool,
    /// Shared health flag. Fault injectors keep a clone of this handle
    /// (see [`GpuWorker::health_handle`]) and flip it mid-run; both
    /// execution worlds poll it at their dispatch boundaries.
    health: Arc<HealthCell>,
}

impl GpuWorker {
    /// Creates a worker from a spec.
    pub fn new(spec: gpu_sim::GpuSpec) -> GpuWorker {
        GpuWorker {
            device: gpu_sim::GpuDevice::new(spec),
            resident_all: false,
            health: Arc::new(HealthCell::new()),
        }
    }

    /// A handle to this worker's health cell, for fault injectors that
    /// flip device state from outside the execution world.
    pub fn health_handle(&self) -> Arc<HealthCell> {
        Arc::clone(&self.health)
    }

    /// Executes `task`, returning the absolute completion breakdown and
    /// the squared-error sum.
    pub fn process(
        &mut self,
        now: SimTime,
        model: &mut Model,
        part: &GridPartition,
        task: &Task,
        gamma: f32,
        hyper: &HyperParams,
    ) -> (gpu_sim::BlockCost, f64) {
        let slices: Vec<mf_sparse::BlockSlices<'_>> =
            task.blocks.iter().map(|&b| part.block(b)).collect();
        if self.resident_all {
            // Everything was bulk-loaded once at startup: only kernel
            // time accrues per task.
            return self.device.process_task_resident(
                now,
                model,
                &slices,
                gamma,
                hyper.lambda_p,
                hyper.lambda_q,
            );
        }
        self.device
            .process_task(
                now,
                model,
                &slices,
                task.p_rows.clone(),
                task.q_cols.clone(),
                gamma,
                hyper.lambda_p,
                hyper.lambda_q,
            )
            .expect("device memory exceeded — configuration error")
    }

    /// [`GpuWorker::process`] through a [`SharedModel`] view — the
    /// real-thread execution path, where the GPU worker thread updates
    /// rows the scheduler reserved for this task while CPU workers run
    /// concurrently on disjoint rows. Timing/memory accounting matches
    /// the `&mut Model` path exactly.
    ///
    /// # Safety
    ///
    /// For the duration of the call, no other thread may access the
    /// factor rows of any user or item appearing in the task's blocks —
    /// the scheduler's conflict-freedom invariant for an in-flight task.
    pub unsafe fn process_shared(
        &mut self,
        now: SimTime,
        model: &SharedModel<'_>,
        part: &GridPartition,
        task: &Task,
        gamma: f32,
        hyper: &HyperParams,
    ) -> (gpu_sim::BlockCost, f64) {
        let slices: Vec<mf_sparse::BlockSlices<'_>> =
            task.blocks.iter().map(|&b| part.block(b)).collect();
        // SAFETY: forwarded caller contract.
        unsafe {
            if self.resident_all {
                return self.device.process_task_resident_shared(
                    now,
                    model,
                    &slices,
                    gamma,
                    hyper.lambda_p,
                    hyper.lambda_q,
                );
            }
            self.device
                .process_task_shared(
                    now,
                    model,
                    &slices,
                    task.p_rows.clone(),
                    task.q_cols.clone(),
                    gamma,
                    hyper.lambda_p,
                    hyper.lambda_q,
                )
                .expect("device memory exceeded — configuration error")
        }
    }

    /// One-time bulk-load cost for the fully resident regime: ship all
    /// ratings plus both factor matrices.
    pub fn initial_load_time(&self, total_points: u64, model: &Model) -> SimTime {
        let bytes = total_points * mf_sparse::Rating::WIRE_BYTES as u64
            + model.factor_bytes(model.nrows() as u64)
            + model.factor_bytes(model.ncols() as u64);
        self.device
            .bus()
            .time_for(gpu_sim::transfer::Direction::HostToDevice, bytes)
    }
}

impl Device for GpuWorker {
    fn queue_depth(&self) -> usize {
        2
    }

    fn health(&self) -> DeviceHealth {
        self.health.get()
    }

    fn process(
        &mut self,
        now: SimTime,
        model: &mut Model,
        part: &GridPartition,
        task: &Task,
        gamma: f32,
        hyper: &HyperParams,
    ) -> DeviceCompletion {
        let (cost, _sq) = GpuWorker::process(self, now, model, part, task, gamma, hyper);
        DeviceCompletion {
            done: cost.times.done,
            busy_secs: cost.t_kernel.as_secs(),
            cost: Some(cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_sparse::{BlockId, GridSpec, SparseMatrix};

    fn setup() -> (Model, GridPartition, Task) {
        let data = SparseMatrix::from_triples(
            (0..32u32).map(|i| (i % 8, (i * 3) % 8, 2.0 + (i % 3) as f32)),
        );
        let spec = GridSpec::uniform(8, 8, 2, 2);
        let part = GridPartition::build(&data, spec);
        let id = BlockId::new(0, 0);
        let task = Task {
            points: part.block_len(id),
            p_rows: part.spec().row_range(0),
            q_cols: part.spec().col_range(0),
            pass: 0,
            stolen: false,
            blocks: vec![id],
        };
        (Model::init(8, 8, 4, 1), part, task)
    }

    #[test]
    fn cpu_worker_updates_model_and_charges_flat_rate() {
        let (mut model, part, task) = setup();
        let before = model.clone();
        let worker = CpuWorker {
            spec: CpuSpec::default(),
        };
        let hyper = mf_sgd::HyperParams::movielens(4);
        let (dur, sq) = worker.process(&mut model, &part, &task, 0.01, &hyper);
        assert_ne!(model, before);
        assert!(sq > 0.0);
        let expect = CpuSpec::default().time_secs(task.points);
        let rel = (dur.as_secs() - expect).abs() / expect;
        assert!(rel <= TIME_JITTER + 1e-12, "duration off by {rel:.4}");
    }

    #[test]
    fn gpu_worker_matches_cpu_numerics_for_single_lane() {
        // With 1 parallel worker the GPU kernel's visit order equals the
        // CPU's storage order, so the models must agree exactly.
        let (mut cpu_model, part, task) = setup();
        let mut gpu_model = cpu_model.clone();
        let hyper = mf_sgd::HyperParams::movielens(4);

        let cpu = CpuWorker {
            spec: CpuSpec::default(),
        };
        cpu.process(&mut cpu_model, &part, &task, 0.01, &hyper);

        let mut gpu = GpuWorker::new(gpu_sim::GpuSpec::default().with_workers(1));
        gpu.process(SimTime::ZERO, &mut gpu_model, &part, &task, 0.01, &hyper);

        assert_eq!(cpu_model, gpu_model);
    }

    #[test]
    fn resident_mode_skips_transfer_charges() {
        let (mut model, part, task) = setup();
        let hyper = mf_sgd::HyperParams::movielens(4);
        let mut cold = GpuWorker::new(gpu_sim::GpuSpec::default());
        let (cost_cold, _) = cold.process(
            SimTime::ZERO,
            &mut model.clone(),
            &part,
            &task,
            0.01,
            &hyper,
        );
        let mut warm = GpuWorker::new(gpu_sim::GpuSpec::default());
        warm.resident_all = true;
        let (cost_warm, _) = warm.process(SimTime::ZERO, &mut model, &part, &task, 0.01, &hyper);
        assert!(cost_cold.h2d_bytes > 0);
        assert_eq!(cost_warm.h2d_bytes, 0);
        assert_eq!(cost_warm.d2h_bytes, 0);
        assert_eq!(cost_warm.t_kernel, cost_cold.t_kernel);
    }

    #[test]
    fn initial_load_covers_everything() {
        let (model, _, _) = setup();
        let gpu = GpuWorker::new(gpu_sim::GpuSpec::default());
        let t = gpu.initial_load_time(32, &model);
        assert!(t > SimTime::ZERO);
        // More data, longer load.
        let t2 = gpu.initial_load_time(32_000_000, &model);
        assert!(t2 > t);
    }
}
