//! Adversarial scheduler validation: seeded timing-fuzz and
//! fault-injection for the HSGD\* schedulers, across both execution
//! worlds.
//!
//! The production schedulers ([`hsgd_core::scheduler::UniformScheduler`],
//! [`hsgd_core::scheduler::StarScheduler`]) promise a safety contract —
//! conflict-free block assignment, no lost or double-executed passes,
//! progress under device faults, feedback that re-converges after bad
//! measurements. This crate *attacks* that contract:
//!
//! * [`script`] — deterministic event scripts: dataset/scheduler
//!   geometry plus injected faults (slowdowns, freezes, permanent
//!   failures, cost-model lies), keyed by completed block passes so the
//!   same script replays identically in virtual time and on real
//!   threads. Serialized as a small text format for the regression
//!   corpus in `tests/fuzz_corpus/`.
//! * [`monitor`] — [`monitor::MonitoredScheduler`], a transparent
//!   scheduler wrapper asserting the contract at every
//!   dispatch/release, which doubles as the fault-injection clock.
//! * [`devices`] — [`devices::AdversarialDevice`], a virtual-device
//!   wrapper adding heavy-tailed latency and health-cell slowdowns.
//! * [`harness`] — [`harness::run_script`] drives one script through
//!   the DES world or the real-thread exclusive world;
//!   [`harness::shrink`] minimizes failing scripts to the events that
//!   matter.
//!
//! A second fuzz surface attacks the **durability layer** instead of
//! the schedulers:
//!
//! * [`iofault`] — [`iofault::FaultFs`], an in-memory filesystem
//!   injecting short writes, ENOSPC, byte-exact crash kills, torn
//!   renames, and bit flips under the live train-and-serve loop
//!   (`mf_serve::live`), plus [`iofault::run_io_script`], the
//!   kill-and-recover harness auditing `mf_serve::delta::recover`
//!   against a shadow log of acked epochs. Scenarios serialize as
//!   `hsgd-fuzz io v1` scripts next to the scheduler ones. The same
//!   faults also attack the out-of-core spill path (`subject arena`
//!   scripts): the MFCK v3 block arena is written and spill-read
//!   through the faulted filesystem, and corruption must surface as
//!   typed errors before any byte reaches a kernel.
//!
//! `mf-bench`'s `fuzz_smoke` binary replays the committed corpus (both
//! script kinds) and a batch of fresh seeds in CI.

pub mod devices;
pub mod harness;
pub mod iofault;
pub mod monitor;
pub mod rng;
pub mod script;

pub use harness::{fuzz_seed, run_script, run_script_all, shrink, FuzzFailure, RunStats, World};
pub use iofault::{
    fuzz_io_seed, probe_offsets, run_io_script, run_io_script_with, shrink_io, FaultFs, IoEvent,
    IoFailure, IoOptions, IoRunStats, IoScript, IoSubject, ARENA_SUBJECT_FILE, CRASH_MSG,
};
pub use monitor::MonitoredScheduler;
pub use script::{DevId, Event, Latency, SchedKind, Script};
