//! The filesystem seam the durable lifecycle writes through — re-export
//! of the workspace `Vfs`.
//!
//! The trait and its production implementation moved to
//! [`mf_sparse::vfs`] when the v3 block arena (out-of-core training)
//! needed to stream spilled blocks through the same seam below this
//! crate in the dependency graph. These re-exports keep every existing
//! `mf_serve::vfs::…` path working; the atomic-publish discipline
//! (`write .tmp → fsync → rename → fsync(dir)`) is unchanged, and the
//! fault-injecting in-memory filesystem in `mf-fuzz` implements the same
//! trait it always did.

pub use mf_sparse::vfs::{RealFs, Vfs, TMP_SUFFIX};
