//! The persistent worker pool.
//!
//! One batch runs at a time (a submit lock serializes concurrent
//! callers); within a batch, the caller and every worker loop on an
//! atomic claim counter — `fetch_add` hands each thread the next
//! unprocessed index, which is the flat-array specialization of
//! work-stealing: a thread that finishes early immediately steals the
//! remaining work instead of idling behind a static split.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Set while this thread is executing pool work (as a worker, or as a
    /// caller participating in its own batch). Nested fan-out from inside
    /// a task runs inline instead of deadlocking on the submit lock.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Lifetime-erased pointer to the batch closure. Valid until the batch's
/// `done` count reaches `n` — the caller does not return (and therefore
/// does not drop the closure) before that.
#[derive(Clone, Copy)]
struct FnPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` and outlives every dereference (see the
// validity argument on the type).
unsafe impl Send for FnPtr {}
unsafe impl Sync for FnPtr {}

/// One indexed batch of `n` tasks.
#[derive(Clone)]
struct Batch {
    func: FnPtr,
    n: usize,
    /// Next unclaimed index; `fetch_add` is the steal.
    next: Arc<AtomicUsize>,
    /// Completed tasks; the batch is over when this reaches `n`.
    done: Arc<AtomicUsize>,
    /// Set on the first panic: remaining tasks are skipped (but still
    /// counted) so the batch drains instead of deadlocking.
    panicked: Arc<AtomicBool>,
    payload: Arc<Mutex<Option<Box<dyn std::any::Any + Send>>>>,
}

impl Batch {
    /// Claims and runs tasks until the batch is exhausted.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            if !self.panicked.load(Ordering::Relaxed) {
                // SAFETY: `done` has not reached `n` (this index is not
                // yet counted), so the caller is still inside
                // `run_indexed` and the closure is alive.
                let f = unsafe { &*self.func.0 };
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                    self.panicked.store(true, Ordering::Relaxed);
                    let mut slot = self
                        .payload
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            }
            self.done.fetch_add(1, Ordering::Release);
        }
    }
}

struct State {
    batch: Option<Batch>,
    /// Bumped per published batch so a worker never re-enters a batch it
    /// already drained.
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new batch (or shutdown).
    work_ready: Condvar,
    /// The caller waits here for `done == n`.
    batch_done: Condvar,
}

/// A persistent pool of `threads − 1` workers plus the calling thread.
///
/// All the deterministic sweeps in this crate take a pool handle; a pool
/// of one thread runs everything inline on the caller, so `threads == 1`
/// is the zero-overhead serial mode (and the two modes produce identical
/// results by construction of the sweep helpers, e.g.
/// [`crate::chunk_map_reduce`]).
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes batches from concurrent callers.
    submit: Mutex<()>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads` total parallelism (`threads − 1`
    /// spawned workers; the caller is the remaining thread).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> ThreadPool {
        assert!(threads > 0, "a pool needs at least the calling thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                batch: None,
                epoch: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
        });
        let workers = (1..threads)
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mf-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .ok()
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            submit: Mutex::new(()),
            threads,
        }
    }

    /// Total parallelism of this pool (workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The process-wide pool, sized by the `MF_PAR_THREADS` environment
    /// variable when set (≥ 1), else by `available_parallelism`. Built on
    /// first use and kept for the life of the process.
    pub fn global() -> &'static ThreadPool {
        static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
    }

    /// Runs `f(0)`, `f(1)`, …, `f(n − 1)`, dynamically load-balanced
    /// across the pool, returning when all have finished. The caller
    /// participates, so a 1-thread pool executes everything inline.
    ///
    /// Index *completion order* is nondeterministic; callers that need
    /// deterministic results write into per-index slots (see
    /// [`crate::chunk_map_reduce`]).
    ///
    /// Panics in a task are re-raised on the caller after the batch
    /// drains. Nested calls from inside a task run inline.
    pub fn run_indexed<F: Fn(usize) + Sync>(&self, n: usize, f: F) {
        if n == 0 {
            return;
        }
        if self.workers.is_empty() || n == 1 || IN_POOL.with(Cell::get) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let _submit = self
            .submit
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY (lifetime erasure): we do not return from this function
        // until `done == n`, and tasks only dereference the pointer
        // before counting themselves done — so `f` outlives every use.
        let func = FnPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        });
        let batch = Batch {
            func,
            n,
            next: Arc::new(AtomicUsize::new(0)),
            done: Arc::new(AtomicUsize::new(0)),
            panicked: Arc::new(AtomicBool::new(false)),
            payload: Arc::new(Mutex::new(None)),
        };
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.batch = Some(batch.clone());
            st.epoch += 1;
        }
        self.shared.work_ready.notify_all();
        // Participate, then wait for the workers to drain the rest.
        IN_POOL.with(|c| c.set(true));
        batch.work();
        IN_POOL.with(|c| c.set(false));
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            while batch.done.load(Ordering::Acquire) < n {
                st = self
                    .shared
                    .batch_done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.batch = None;
        }
        let panic = batch
            .payload
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let batch = {
            let mut st = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(b) = &st.batch {
                        seen_epoch = st.epoch;
                        break b.clone();
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        batch.work();
        // Wake the caller; taking the state lock orders this notify after
        // the caller's `done` check, so the wakeup cannot be lost.
        drop(
            shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        shared.batch_done.notify_all();
    }
}

fn default_threads() -> usize {
    std::env::var("MF_PAR_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// The process-wide parallelism budget every thread-spawning layer in the
/// workspace must respect: `MF_PAR_THREADS` when set (≥ 1), else
/// `available_parallelism`. [`ThreadPool::global`] is sized by this value,
/// and code that spawns its own threads (e.g. the real-thread trainer
/// runtime) clamps its worker count to it so the process never
/// oversubscribes the budget.
pub fn effective_parallelism() -> usize {
    default_threads()
}

/// True while the current thread is executing inside an mf-par batch —
/// either as a pool worker or as a caller participating in its own batch.
/// Layers that would otherwise spawn threads (nested fan-out) must check
/// this and fall back to inline execution instead of stacking a second
/// level of parallelism on top of the pool.
pub fn in_pool() -> bool {
    IN_POOL.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_indices_run_exactly_once() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
            pool.run_indexed(hits.len(), |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_batch_is_noop() {
        let pool = ThreadPool::new(3);
        pool.run_indexed(0, |_| panic!("must not run"));
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ThreadPool::new(4);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            pool.run_indexed(round + 1, |i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            let n = round + 1;
            assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
        }
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = ThreadPool::new(4);
        let ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_indexed(64, |i| {
                ran.fetch_add(1, Ordering::Relaxed);
                if i == 10 {
                    panic!("task 10 boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must reach the caller");
        // The pool survives and keeps working.
        let sum = AtomicUsize::new(0);
        pool.run_indexed(8, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        pool.run_indexed(8, |_| {
            // A task fanning out on the same pool must not deadlock.
            pool.run_indexed(4, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_external_callers_are_serialized_not_deadlocked() {
        let pool = Arc::new(ThreadPool::new(3));
        let total = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            let total = Arc::clone(&total);
            handles.push(std::thread::spawn(move || {
                pool.run_indexed(100, |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 400);
    }
}
