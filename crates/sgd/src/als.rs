//! Alternating least squares (Koren et al. — paper \[16\], Sec. III-C).
//!
//! Each iteration solves, for every user, the ridge-regression normal
//! equations with all item factors fixed, then symmetrically for every
//! item. The regularization is weighted by the user's/item's rating count
//! (ALS-WR), which makes the minimized objective identical to the SGD loss
//! of Eq. 2 where `λ‖p_u‖²` is charged once per rating.
//!
//! ALS is one of the non-SGD baselines the paper positions against; it is
//! included so the examples and benches can contrast convergence behaviour.

use mf_sparse::{CscView, CsrView, SparseMatrix};

use crate::hyper::HyperParams;
use crate::model::Model;

/// Solves the SPD system `A x = b` in place via Cholesky decomposition.
/// `a` is `k×k` row-major and is destroyed; `b` becomes the solution.
/// Returns `false` if the matrix is not positive definite (degenerate
/// system), in which case `b` is garbage and the caller should skip the
/// update.
pub fn cholesky_solve(a: &mut [f64], b: &mut [f64], k: usize) -> bool {
    debug_assert_eq!(a.len(), k * k);
    debug_assert_eq!(b.len(), k);
    // Decompose: A = L·Lᵀ, storing L in the lower triangle.
    for i in 0..k {
        for j in 0..=i {
            let mut sum = a[i * k + j];
            for l in 0..j {
                sum -= a[i * k + l] * a[j * k + l];
            }
            if i == j {
                if sum <= 0.0 {
                    return false;
                }
                a[i * k + i] = sum.sqrt();
            } else {
                a[i * k + j] = sum / a[j * k + j];
            }
        }
    }
    // Forward solve L y = b.
    for i in 0..k {
        let mut sum = b[i];
        for j in 0..i {
            sum -= a[i * k + j] * b[j];
        }
        b[i] = sum / a[i * k + i];
    }
    // Back solve Lᵀ x = y.
    for i in (0..k).rev() {
        let mut sum = b[i];
        for j in i + 1..k {
            sum -= a[j * k + i] * b[j];
        }
        b[i] = sum / a[i * k + i];
    }
    true
}

/// ALS configuration.
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Shared hyper-parameters; `gamma` and `schedule` are unused by ALS.
    pub hyper: HyperParams,
    /// Number of alternating iterations (each updates all of P then all
    /// of Q).
    pub iterations: u32,
    /// Seed for factor initialization.
    pub seed: u64,
}

/// Trains a model with ALS.
pub fn train(data: &SparseMatrix, cfg: &AlsConfig) -> Model {
    train_with(data, cfg, |_, _| {})
}

/// Trains with ALS, invoking `probe(iteration, &model)` after each full
/// alternation.
pub fn train_with<F>(data: &SparseMatrix, cfg: &AlsConfig, mut probe: F) -> Model
where
    F: FnMut(u32, &Model),
{
    let k = cfg.hyper.k;
    let mut model = Model::init(data.nrows(), data.ncols(), k, cfg.seed);
    if data.is_empty() {
        return model;
    }
    let csr = CsrView::build(data);
    let csc = CscView::build(data);
    let mut a = vec![0f64; k * k];
    let mut b = vec![0f64; k];

    for it in 0..cfg.iterations {
        // Update every user factor with items fixed.
        for u in 0..data.nrows() {
            let count = csr.row_len(u);
            if count == 0 {
                continue;
            }
            build_normal_eq(
                &mut a,
                &mut b,
                k,
                csr.row(u),
                |v| model.q_row(v),
                cfg.hyper.lambda_p as f64 * count as f64,
            );
            if cholesky_solve(&mut a, &mut b, k) {
                let pu = model.p_row_mut(u);
                for (dst, &src) in pu.iter_mut().zip(b.iter()) {
                    *dst = src as f32;
                }
            }
        }
        // Update every item factor with users fixed.
        for v in 0..data.ncols() {
            let count = csc.col_len(v);
            if count == 0 {
                continue;
            }
            build_normal_eq(
                &mut a,
                &mut b,
                k,
                csc.col(v),
                |u| model.p_row(u),
                cfg.hyper.lambda_q as f64 * count as f64,
            );
            if cholesky_solve(&mut a, &mut b, k) {
                let qv = model.q_row_mut(v);
                for (dst, &src) in qv.iter_mut().zip(b.iter()) {
                    *dst = src as f32;
                }
            }
        }
        probe(it, &model);
    }
    model
}

/// Accumulates `A = Σ f·fᵀ + ridge·I` and `b = Σ r·f` over the neighbor
/// factors of one user/item.
fn build_normal_eq<'m>(
    a: &mut [f64],
    b: &mut [f64],
    k: usize,
    neighbors: impl Iterator<Item = (u32, f32)>,
    factor_of: impl Fn(u32) -> &'m [f32],
    ridge: f64,
) {
    a.fill(0.0);
    b.fill(0.0);
    for (other, r) in neighbors {
        let f = factor_of(other);
        for i in 0..k {
            let fi = f[i] as f64;
            b[i] += r as f64 * fi;
            // Symmetric rank-one update; fill the full matrix (simplifies
            // the solver).
            for j in 0..k {
                a[i * k + j] += fi * f[j] as f64;
            }
        }
    }
    for i in 0..k {
        a[i * k + i] += ridge;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use mf_sparse::Rating;

    #[test]
    fn cholesky_solves_known_system() {
        // A = [[4, 2], [2, 3]], b = [10, 9] → x = [1.5, 2].
        let mut a = vec![4.0, 2.0, 2.0, 3.0];
        let mut b = vec![10.0, 9.0];
        assert!(cholesky_solve(&mut a, &mut b, 2));
        assert!((b[0] - 1.5).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        let mut b = vec![1.0, 1.0];
        assert!(!cholesky_solve(&mut a, &mut b, 2));
    }

    #[test]
    fn cholesky_identity() {
        let k = 5;
        let mut a = vec![0.0; k * k];
        for i in 0..k {
            a[i * k + i] = 1.0;
        }
        let mut b: Vec<f64> = (0..k).map(|i| i as f64).collect();
        let expect = b.clone();
        assert!(cholesky_solve(&mut a, &mut b, k));
        for (x, e) in b.iter().zip(&expect) {
            assert!((x - e).abs() < 1e-12);
        }
    }

    fn low_rank_data(m: u32, n: u32, seed: u64) -> SparseMatrix {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<[f32; 2]> = (0..m).map(|_| [rng.random(), rng.random()]).collect();
        let b: Vec<[f32; 2]> = (0..n).map(|_| [rng.random(), rng.random()]).collect();
        let mut entries = Vec::new();
        for u in 0..m {
            for v in 0..n {
                if rng.random::<f32>() < 0.6 {
                    let r = 1.0
                        + 2.0
                            * (a[u as usize][0] * b[v as usize][0]
                                + a[u as usize][1] * b[v as usize][1]);
                    entries.push(Rating::new(u, v, r));
                }
            }
        }
        SparseMatrix::new(m, n, entries).unwrap()
    }

    #[test]
    fn als_converges_fast() {
        let data = low_rank_data(40, 35, 21);
        let cfg = AlsConfig {
            hyper: HyperParams {
                k: 8,
                lambda_p: 0.01,
                lambda_q: 0.01,
                gamma: 0.0,
                schedule: crate::LearningRate::Fixed,
            },
            iterations: 10,
            seed: 5,
        };
        let model = train(&data, &cfg);
        let rmse = eval::rmse(&model, &data);
        assert!(rmse < 0.05, "als should nail low-rank data, got {rmse}");
    }

    #[test]
    fn als_rmse_monotone_over_iterations() {
        let data = low_rank_data(30, 30, 22);
        let cfg = AlsConfig {
            hyper: HyperParams {
                k: 4,
                lambda_p: 0.05,
                lambda_q: 0.05,
                gamma: 0.0,
                schedule: crate::LearningRate::Fixed,
            },
            iterations: 6,
            seed: 6,
        };
        let mut history = Vec::new();
        let _ = train_with(&data, &cfg, |_, m| history.push(eval::rmse(m, &data)));
        assert_eq!(history.len(), 6);
        for w in history.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-6,
                "ALS loss must not increase: {history:?}"
            );
        }
    }

    #[test]
    fn handles_users_with_no_ratings() {
        // User 2 and item 2 have no ratings; ALS must leave them untouched
        // and not crash.
        let data =
            SparseMatrix::new(3, 3, vec![Rating::new(0, 0, 1.0), Rating::new(1, 1, 2.0)]).unwrap();
        let cfg = AlsConfig {
            hyper: HyperParams::movielens(4),
            iterations: 3,
            seed: 7,
        };
        let init = Model::init(3, 3, 4, 7);
        let model = train(&data, &cfg);
        assert_eq!(model.p_row(2), init.p_row(2));
        assert_eq!(model.q_row(2), init.q_row(2));
    }
}
