//! Compressed row/column views over a [`SparseMatrix`].
//!
//! SGD itself only needs the COO stream, but the ALS and CCD++ reference
//! solvers (related-work baselines, paper Sec. III-C) need per-row and
//! per-column access, as do the dataset statistics used by the experiment
//! harness. These views index into the original matrix without copying the
//! rating values.

use mf_par::{stable_counting_scatter, ScatterSlice, ThreadPool, DEFAULT_CHUNK};

use crate::matrix::{Rating, SparseMatrix};

/// Compressed sparse-row view: for each row, the entries in that row.
#[derive(Debug, Clone)]
pub struct CsrView {
    /// `row_ptr[u]..row_ptr[u+1]` indexes `cols`/`vals` for row `u`.
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl CsrView {
    /// Builds the view in `O(nnz + m)` with a stable counting sort by
    /// row, on the process-wide thread pool.
    pub fn build(m: &SparseMatrix) -> CsrView {
        Self::build_in(m, ThreadPool::global())
    }

    /// Builds the view with the counting passes on `pool`. The result is
    /// identical for any thread count (stable counting sort is unique).
    pub fn build_in(m: &SparseMatrix, pool: &ThreadPool) -> CsrView {
        let entries = m.entries();
        let mut cols = vec![0u32; m.nnz()];
        let mut vals = vec![0f32; m.nnz()];
        let row_ptr = {
            let dc = ScatterSlice::new(&mut cols);
            let dv = ScatterSlice::new(&mut vals);
            stable_counting_scatter(
                pool,
                entries.len(),
                m.nrows() as usize,
                DEFAULT_CHUNK,
                |i| entries[i].u as usize,
                // SAFETY: the scatter plan assigns each destination index
                // to exactly one entry.
                |i, at| {
                    let e = &entries[i];
                    unsafe {
                        dc.write(at, e.v);
                        dv.write(at, e.r);
                    }
                },
            )
        };
        CsrView {
            row_ptr,
            cols,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The `(column, value)` pairs of row `u`.
    pub fn row(&self, u: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.row_ptr[u as usize];
        let hi = self.row_ptr[u as usize + 1];
        self.cols[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Number of entries in row `u`.
    pub fn row_len(&self, u: u32) -> usize {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }
}

/// Compressed sparse-column view: for each column, the entries in it.
#[derive(Debug, Clone)]
pub struct CscView {
    col_ptr: Vec<usize>,
    rows: Vec<u32>,
    vals: Vec<f32>,
}

impl CscView {
    /// Builds the view in `O(nnz + n)` with a stable counting sort by
    /// column, on the process-wide thread pool.
    pub fn build(m: &SparseMatrix) -> CscView {
        Self::build_in(m, ThreadPool::global())
    }

    /// Builds the view with the counting passes on `pool`. The result is
    /// identical for any thread count.
    pub fn build_in(m: &SparseMatrix, pool: &ThreadPool) -> CscView {
        let entries = m.entries();
        let mut rows = vec![0u32; m.nnz()];
        let mut vals = vec![0f32; m.nnz()];
        let col_ptr = {
            let dr = ScatterSlice::new(&mut rows);
            let dv = ScatterSlice::new(&mut vals);
            stable_counting_scatter(
                pool,
                entries.len(),
                m.ncols() as usize,
                DEFAULT_CHUNK,
                |i| entries[i].v as usize,
                // SAFETY: as above — destinations are unique.
                |i, at| {
                    let e = &entries[i];
                    unsafe {
                        dr.write(at, e.u);
                        dv.write(at, e.r);
                    }
                },
            )
        };
        CscView {
            col_ptr,
            rows,
            vals,
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Total number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// The `(row, value)` pairs of column `v`.
    pub fn col(&self, v: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.col_ptr[v as usize];
        let hi = self.col_ptr[v as usize + 1];
        self.rows[lo..hi]
            .iter()
            .copied()
            .zip(self.vals[lo..hi].iter().copied())
    }

    /// Number of entries in column `v`.
    pub fn col_len(&self, v: u32) -> usize {
        self.col_ptr[v as usize + 1] - self.col_ptr[v as usize]
    }
}

/// Reconstructs the COO triples from a CSR view, in row-major order.
/// Primarily used by tests to check the round trip.
pub fn csr_to_triples(csr: &CsrView) -> Vec<Rating> {
    let mut out = Vec::with_capacity(csr.nnz());
    for u in 0..csr.nrows() as u32 {
        for (v, r) in csr.row(u) {
            out.push(Rating::new(u, v, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        SparseMatrix::from_triples(vec![
            (2, 0, 1.0),
            (0, 1, 2.0),
            (0, 0, 3.0),
            (1, 2, 4.0),
            (2, 2, 5.0),
        ])
    }

    #[test]
    fn csr_groups_by_row() {
        let csr = CsrView::build(&sample());
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.nnz(), 5);
        let row0: Vec<_> = csr.row(0).collect();
        assert_eq!(row0, vec![(1, 2.0), (0, 3.0)]); // storage order preserved
        assert_eq!(csr.row_len(1), 1);
        assert_eq!(csr.row_len(2), 2);
    }

    #[test]
    fn csc_groups_by_col() {
        let csc = CscView::build(&sample());
        assert_eq!(csc.ncols(), 3);
        assert_eq!(csc.nnz(), 5);
        let col2: Vec<_> = csc.col(2).collect();
        assert_eq!(col2, vec![(1, 4.0), (2, 5.0)]);
        assert_eq!(csc.col_len(0), 2);
        assert_eq!(csc.col_len(1), 1);
    }

    #[test]
    fn empty_rows_and_cols() {
        let m = SparseMatrix::new(3, 3, vec![Rating::new(0, 0, 1.0)]).unwrap();
        let csr = CsrView::build(&m);
        assert_eq!(csr.row_len(1), 0);
        assert_eq!(csr.row(2).count(), 0);
        let csc = CscView::build(&m);
        assert_eq!(csc.col_len(2), 0);
    }

    #[test]
    fn round_trip_preserves_multiset() {
        let m = sample();
        let csr = CsrView::build(&m);
        let mut got = csr_to_triples(&csr);
        let mut want = m.entries().to_vec();
        let key = |r: &Rating| (r.u, r.v, r.r.to_bits());
        got.sort_by_key(key);
        want.sort_by_key(key);
        assert_eq!(got, want);
    }
}
