//! COO rating-matrix storage.

use serde::{Deserialize, Serialize};

/// One observed rating: user `u` gave item `v` the value `r`.
///
/// Matches the paper's triadic-tuple storage. 12 bytes, `Copy`, and laid out
/// so a block of ratings can be transferred to the (simulated) GPU as a flat
/// byte buffer — the same `4 + 4 + 4` layout cuMF_SGD ships over PCIe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[repr(C)]
pub struct Rating {
    /// Row (user) index, `0 <= u < m`.
    pub u: u32,
    /// Column (item) index, `0 <= v < n`.
    pub v: u32,
    /// Observed rating value.
    pub r: f32,
}

impl Rating {
    /// Convenience constructor.
    #[inline]
    pub fn new(u: u32, v: u32, r: f32) -> Rating {
        Rating { u, v, r }
    }

    /// Size of one rating on the wire, in bytes.
    pub const WIRE_BYTES: usize = 12;
}

/// A borrowed structure-of-arrays view over a run of ratings: entry `i`
/// is `(rows[i], cols[i], vals[i])`.
///
/// This is the layout the monomorphized SGD kernels consume: three
/// unit-stride streams instead of a 12-byte interleaved [`Rating`]
/// stride, so the index loads and the value loads each hit their own
/// dense cache lines. [`crate::GridPartition`] stores every block this
/// way and hands out `BlockSlices` views.
#[derive(Debug, Clone, Copy)]
pub struct BlockSlices<'a> {
    /// Row (user) indices.
    pub rows: &'a [u32],
    /// Column (item) indices.
    pub cols: &'a [u32],
    /// Rating values.
    pub vals: &'a [f32],
}

impl<'a> BlockSlices<'a> {
    /// Assembles a view from three equal-length slices.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn new(rows: &'a [u32], cols: &'a [u32], vals: &'a [f32]) -> BlockSlices<'a> {
        assert!(
            rows.len() == cols.len() && cols.len() == vals.len(),
            "SoA slices must have equal lengths"
        );
        BlockSlices { rows, cols, vals }
    }

    /// An empty view.
    #[inline]
    pub fn empty() -> BlockSlices<'static> {
        BlockSlices {
            rows: &[],
            cols: &[],
            vals: &[],
        }
    }

    /// Number of ratings in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view holds no ratings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The `i`-th rating, materialized as a [`Rating`].
    #[inline]
    pub fn get(&self, i: usize) -> Rating {
        Rating::new(self.rows[i], self.cols[i], self.vals[i])
    }

    /// A sub-view over `range` (same indices in all three streams).
    #[inline]
    pub fn slice(&self, range: std::ops::Range<usize>) -> BlockSlices<'a> {
        BlockSlices {
            rows: &self.rows[range.clone()],
            cols: &self.cols[range.clone()],
            vals: &self.vals[range],
        }
    }

    /// Iterates the ratings in order, materialized as [`Rating`] values.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = Rating> + 'a {
        self.rows
            .iter()
            .zip(self.cols)
            .zip(self.vals)
            .map(|((&u, &v), &r)| Rating::new(u, v, r))
    }

    /// Bytes this view's ratings occupy on the (simulated) PCIe wire.
    #[inline]
    pub fn wire_bytes(&self) -> usize {
        self.len() * Rating::WIRE_BYTES
    }
}

/// Owned structure-of-arrays rating storage — the buffer type behind
/// [`BlockSlices`] views. Used by trainers that keep a private reordered
/// copy of the data in kernel-friendly layout (e.g. Hogwild).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaRatings {
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl SoaRatings {
    /// Empty storage with room for `n` ratings.
    pub fn with_capacity(n: usize) -> SoaRatings {
        SoaRatings {
            rows: Vec::with_capacity(n),
            cols: Vec::with_capacity(n),
            vals: Vec::with_capacity(n),
        }
    }

    /// Converts an AoS rating run into SoA storage.
    pub fn from_entries(entries: &[Rating]) -> SoaRatings {
        let mut out = SoaRatings::with_capacity(entries.len());
        for e in entries {
            out.push(*e);
        }
        out
    }

    /// Appends one rating.
    #[inline]
    pub fn push(&mut self, e: Rating) {
        self.rows.push(e.u);
        self.cols.push(e.v);
        self.vals.push(e.r);
    }

    /// Number of stored ratings.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no ratings are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A view over all stored ratings.
    #[inline]
    pub fn as_slices(&self) -> BlockSlices<'_> {
        BlockSlices {
            rows: &self.rows,
            cols: &self.cols,
            vals: &self.vals,
        }
    }

    /// A view over `range`.
    #[inline]
    pub fn slice(&self, range: std::ops::Range<usize>) -> BlockSlices<'_> {
        self.as_slices().slice(range)
    }

    /// Seeded Fisher–Yates shuffle applying the same swap sequence to all
    /// three streams in lockstep — the permutation is identical to
    /// [`crate::shuffle::shuffle_entries`] with the same seed on the AoS
    /// form of the same data.
    pub fn shuffle(&mut self, seed: u64) {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.rows.swap(i, j);
            self.cols.swap(i, j);
            self.vals.swap(i, j);
        }
    }
}

/// A sparse `m × n` rating matrix in coordinate form.
///
/// Entry order is meaningful: SGD visits entries in storage order, so
/// shuffling (see [`crate::shuffle`]) is an explicit, seeded operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    nrows: u32,
    ncols: u32,
    entries: Vec<Rating>,
}

impl SparseMatrix {
    /// Creates a matrix from parts, validating that every entry is in
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns the index of the first out-of-bounds entry.
    pub fn new(nrows: u32, ncols: u32, entries: Vec<Rating>) -> Result<SparseMatrix, usize> {
        if let Some(bad) = entries.iter().position(|e| e.u >= nrows || e.v >= ncols) {
            return Err(bad);
        }
        Ok(SparseMatrix {
            nrows,
            ncols,
            entries,
        })
    }

    /// Creates an empty matrix of the given shape.
    pub fn empty(nrows: u32, ncols: u32) -> SparseMatrix {
        SparseMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates a matrix from `(u, v, r)` triples, inferring the shape from
    /// the maximum indices present (`max+1`). Panics on an empty iterator
    /// only in the sense of producing a 0×0 matrix.
    pub fn from_triples<I>(triples: I) -> SparseMatrix
    where
        I: IntoIterator<Item = (u32, u32, f32)>,
    {
        let entries: Vec<Rating> = triples
            .into_iter()
            .map(|(u, v, r)| Rating::new(u, v, r))
            .collect();
        let nrows = entries.iter().map(|e| e.u + 1).max().unwrap_or(0);
        let ncols = entries.iter().map(|e| e.v + 1).max().unwrap_or(0);
        SparseMatrix {
            nrows,
            ncols,
            entries,
        }
    }

    /// Number of rows (users), the paper's `m`.
    #[inline]
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns (items), the paper's `n`.
    #[inline]
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of observed ratings, the paper's `|R|`.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no observed ratings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entries in storage order.
    #[inline]
    pub fn entries(&self) -> &[Rating] {
        &self.entries
    }

    /// Mutable access to the entries (used by shuffling).
    #[inline]
    pub fn entries_mut(&mut self) -> &mut [Rating] {
        &mut self.entries
    }

    /// Consumes the matrix, returning its entry buffer.
    pub fn into_entries(self) -> Vec<Rating> {
        self.entries
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if the entry is out of bounds for this matrix's shape.
    pub fn push(&mut self, e: Rating) {
        assert!(
            e.u < self.nrows && e.v < self.ncols,
            "entry ({}, {}) out of bounds for {}x{} matrix",
            e.u,
            e.v,
            self.nrows,
            self.ncols
        );
        self.entries.push(e);
    }

    /// Density `|R| / (m·n)`, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.nrows == 0 || self.ncols == 0 {
            return 0.0;
        }
        self.entries.len() as f64 / (self.nrows as f64 * self.ncols as f64)
    }

    /// Mean rating value, or 0.0 when empty. Used for bias-corrected
    /// initialization of the factor matrices.
    pub fn mean_rating(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.entries.iter().map(|e| e.r as f64).sum();
        sum / self.entries.len() as f64
    }

    /// `(min, max)` rating values, or `None` when empty.
    pub fn rating_range(&self) -> Option<(f32, f32)> {
        self.entries.iter().fold(None, |acc, e| match acc {
            None => Some((e.r, e.r)),
            Some((lo, hi)) => Some((lo.min(e.r), hi.max(e.r))),
        })
    }

    /// Size of this matrix's entry payload on the wire (PCIe transfer
    /// accounting), in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.entries.len() * Rating::WIRE_BYTES
    }

    /// Splits the entries into two matrices of the same shape: the first
    /// `head` entries and the rest. Used for train/test splits after a
    /// shuffle.
    pub fn split_at(mut self, head: usize) -> (SparseMatrix, SparseMatrix) {
        let head = head.min(self.entries.len());
        let tail = self.entries.split_off(head);
        let rest = SparseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            entries: tail,
        };
        (self, rest)
    }

    /// Per-row entry counts (length `m`).
    pub fn row_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nrows as usize];
        for e in &self.entries {
            counts[e.u as usize] += 1;
        }
        counts
    }

    /// Per-column entry counts (length `n`).
    pub fn col_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.ncols as usize];
        for e in &self.entries {
            counts[e.v as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SparseMatrix {
        SparseMatrix::from_triples(vec![
            (0, 0, 3.0),
            (0, 1, 5.0),
            (1, 2, 4.5),
            (2, 0, 3.0),
            (3, 3, 1.0),
        ])
    }

    #[test]
    fn shape_inference() {
        let m = small();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 5);
        assert!(!m.is_empty());
    }

    #[test]
    fn new_validates_bounds() {
        let bad = SparseMatrix::new(2, 2, vec![Rating::new(0, 0, 1.0), Rating::new(2, 0, 1.0)]);
        assert_eq!(bad, Err(1));
        let ok = SparseMatrix::new(2, 2, vec![Rating::new(1, 1, 1.0)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn push_in_bounds() {
        let mut m = SparseMatrix::empty(2, 2);
        m.push(Rating::new(1, 1, 2.0));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut m = SparseMatrix::empty(2, 2);
        m.push(Rating::new(2, 0, 1.0));
    }

    #[test]
    fn statistics() {
        let m = small();
        assert!((m.mean_rating() - 3.3).abs() < 1e-9);
        assert_eq!(m.rating_range(), Some((1.0, 5.0)));
        assert!((m.density() - 5.0 / 16.0).abs() < 1e-12);
        assert_eq!(m.row_counts(), vec![2, 1, 1, 1]);
        assert_eq!(m.col_counts(), vec![2, 1, 1, 1]);
    }

    #[test]
    fn empty_statistics() {
        let m = SparseMatrix::empty(0, 0);
        assert_eq!(m.mean_rating(), 0.0);
        assert_eq!(m.rating_range(), None);
        assert_eq!(m.density(), 0.0);
    }

    #[test]
    fn split_preserves_shape_and_entries() {
        let m = small();
        let total = m.nnz();
        let (a, b) = m.split_at(2);
        assert_eq!(a.nnz(), 2);
        assert_eq!(b.nnz(), total - 2);
        assert_eq!(a.nrows(), 4);
        assert_eq!(b.nrows(), 4);
        // Split beyond the end keeps everything in the head.
        let (c, d) = small().split_at(100);
        assert_eq!(c.nnz(), total);
        assert_eq!(d.nnz(), 0);
    }

    #[test]
    fn wire_bytes_matches_layout() {
        assert_eq!(std::mem::size_of::<Rating>(), Rating::WIRE_BYTES);
        assert_eq!(small().wire_bytes(), 5 * 12);
    }

    #[test]
    fn soa_round_trips_entries() {
        let m = small();
        let soa = SoaRatings::from_entries(m.entries());
        assert_eq!(soa.len(), m.nnz());
        let back: Vec<Rating> = soa.as_slices().iter().collect();
        assert_eq!(back, m.entries());
        for (i, e) in m.entries().iter().enumerate() {
            assert_eq!(soa.as_slices().get(i), *e);
        }
    }

    #[test]
    fn soa_shuffle_matches_aos_shuffle() {
        use crate::shuffle::shuffle_entries;
        let mut m = small();
        let mut soa = SoaRatings::from_entries(m.entries());
        shuffle_entries(&mut m, 77);
        soa.shuffle(77);
        let back: Vec<Rating> = soa.as_slices().iter().collect();
        assert_eq!(back, m.entries(), "lockstep shuffle must match AoS");
    }

    #[test]
    fn block_slices_sub_view() {
        let soa = SoaRatings::from_entries(small().entries());
        let view = soa.slice(1..4);
        assert_eq!(view.len(), 3);
        assert_eq!(view.get(0), small().entries()[1]);
        assert_eq!(view.wire_bytes(), 3 * Rating::WIRE_BYTES);
        assert!(BlockSlices::empty().is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn block_slices_rejects_mismatched_lengths() {
        let _ = BlockSlices::new(&[1, 2], &[1], &[0.5]);
    }
}
