//! The crash-safe continuous train-and-serve loop: epoch-versioned
//! serving plus incremental durable checkpoints.
//!
//! Two halves, joined by an atomic pointer flip:
//!
//! * [`LiveStore`] — readers always hold a complete, immutable
//!   [`FactorStore`] at some epoch N. Publishing N+1 swaps an
//!   `Arc` pointer under a lock held only for the swap/clone itself
//!   (no reader ever waits behind a store build or a disk write), so a
//!   reader observes either all of version N or all of N+1 — never a
//!   half-swapped hybrid. The result cache is keyed by epoch already,
//!   so stale hits are structurally impossible. Staleness (trainer
//!   epoch minus serving epoch) is recorded per read into an
//!   [`hsgd_core::stats::EpochLag`].
//! * [`LiveTrainer`] — the single-writer side: ingest ratings, fold in
//!   unseen users/items (the model grows), run SGD passes over the new
//!   ratings, then persist the epoch *incrementally* as an `MFCK` v2
//!   delta of exactly the touched rows ([`crate::delta`]), through the
//!   atomic-publish discipline of [`crate::vfs`]. Every
//!   `snapshot_every` epochs the trainer re-bases with a full v1
//!   snapshot so recovery chains stay short.
//!
//! **Durability contract.** An epoch is *acked* once its record is
//! published (fsync + rename). If a write fails (ENOSPC, crash), the
//! epoch is simply not acked: its touched rows stay in the trainer's
//! touched set and roll into the next successful delta, whose
//! `base_epoch` is the last *acked* epoch — so the on-disk chain never
//! has holes, and [`crate::delta::recover`] always reconstructs exactly
//! the last acked state. Serving, by design, may run ahead of
//! durability (the freshest model serves even while the disk is
//! misbehaving); a restart rewinds to the last acked epoch.

use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hsgd_core::stats::EpochLag;
use mf_sgd::{kernel, Model};

use crate::checkpoint::{self, CheckpointMeta};
use crate::delta::{self, DeltaMeta, Recovery};
use crate::foldin::{FoldIn, FoldInConfig};
use crate::store::FactorStore;
use crate::vfs::Vfs;

/// The reader-facing side of the live loop: a versioned, atomically
/// swappable [`FactorStore`].
pub struct LiveStore {
    /// The serving version. The mutex guards only the pointer swap and
    /// clone — O(1), never held across a build, a scan, or I/O.
    current: Mutex<Arc<FactorStore>>,
    serving_epoch: AtomicU64,
    trained_epoch: AtomicU64,
    swaps: AtomicU64,
    lag: Mutex<EpochLag>,
}

impl LiveStore {
    /// A live store serving `store` as its first version.
    pub fn new(store: FactorStore) -> Arc<LiveStore> {
        let epoch = store.epoch();
        Arc::new(LiveStore {
            current: Mutex::new(Arc::new(store)),
            serving_epoch: AtomicU64::new(epoch),
            trained_epoch: AtomicU64::new(epoch),
            swaps: AtomicU64::new(0),
            lag: Mutex::new(EpochLag::new()),
        })
    }

    /// The current serving version. Readers keep the returned `Arc` for
    /// a whole request; a concurrent publish never invalidates it —
    /// old versions die when their last reader drops them. Records one
    /// staleness sample (trainer epoch − serving epoch).
    pub fn current(&self) -> Arc<FactorStore> {
        let store = self.current.lock().expect("poisoned").clone();
        let lag = self
            .trained_epoch
            .load(Ordering::Acquire)
            .saturating_sub(store.epoch());
        self.lag.lock().expect("poisoned").record(lag);
        store
    }

    /// The trainer announces it finished computing `epoch` (before the
    /// store for it is built) — the clock staleness is measured
    /// against.
    pub fn mark_trained(&self, epoch: u64) {
        self.trained_epoch.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Atomically swaps the serving version to `store`.
    ///
    /// # Panics
    ///
    /// Panics unless `store.epoch()` strictly exceeds the serving
    /// epoch — versions move forward only, so a reader can treat epoch
    /// as a monotonic clock.
    pub fn publish(&self, store: FactorStore) {
        let epoch = store.epoch();
        self.mark_trained(epoch);
        let mut cur = self.current.lock().expect("poisoned");
        assert!(
            epoch > cur.epoch(),
            "non-monotonic publish: epoch {epoch} after {}",
            cur.epoch()
        );
        *cur = Arc::new(store);
        // Ordering: serving_epoch trails the swap; readers that load it
        // see an epoch ≤ the store `current()` hands them.
        self.serving_epoch.store(epoch, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Epoch of the version readers get right now.
    pub fn serving_epoch(&self) -> u64 {
        self.serving_epoch.load(Ordering::Acquire)
    }

    /// Newest epoch the trainer has finished computing.
    pub fn trained_epoch(&self) -> u64 {
        self.trained_epoch.load(Ordering::Acquire)
    }

    /// Completed version swaps.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// The staleness distribution observed by readers so far.
    pub fn lag_stats(&self) -> EpochLag {
        self.lag.lock().expect("poisoned").clone()
    }
}

impl std::fmt::Debug for LiveStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveStore")
            .field("serving_epoch", &self.serving_epoch())
            .field("trained_epoch", &self.trained_epoch())
            .field("swaps", &self.swaps())
            .finish()
    }
}

/// Hyper-parameters of the live loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// SGD step size for online updates over newly ingested ratings.
    pub gamma: f32,
    /// Ridge term for both factor sides.
    pub lambda: f32,
    /// Passes over each epoch's new ratings.
    pub passes: u32,
    /// Fold-in solve parameters for unseen users/items.
    pub foldin: FoldInConfig,
    /// Write a full re-basing snapshot when the chain from the last
    /// snapshot reaches this many epochs (≥ 1; 1 = snapshot always,
    /// never a delta).
    pub snapshot_every: u64,
    /// At-rest item-factor precision of every [`FactorStore`] the loop
    /// publishes. Training and checkpoints stay full f32 — only the
    /// serving tiles are quantized, so a restart (or a precision
    /// change) rebuilds them from the exact factors.
    pub precision: crate::store::Precision,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            gamma: 0.02,
            lambda: 0.02,
            passes: 2,
            foldin: FoldInConfig::default(),
            snapshot_every: 8,
            precision: crate::store::Precision::F32,
        }
    }
}

/// What kind of durable record an epoch produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Full v1 `MFCK` snapshot (re-base).
    Snapshot,
    /// v2 delta of the rows touched since the last acked epoch.
    Delta,
}

/// The outcome of one [`LiveTrainer::step`].
#[derive(Debug)]
pub struct EpochReport {
    /// The epoch this step completed.
    pub epoch: u64,
    /// Ratings trained on.
    pub ingested: usize,
    /// New user rows folded in.
    pub folded_users: u32,
    /// New item rows folded in.
    pub folded_items: u32,
    /// The record kind this epoch attempted to persist.
    pub kind: RecordKind,
    /// File name of the record (attempted; durable only if acked).
    pub file: String,
    /// Bytes the record serialized to (0 when the write failed before
    /// completing).
    pub bytes: u64,
    /// Whether the record was durably published. When `false`, the
    /// epoch's touched rows roll into the next record and
    /// [`EpochReport::ckpt_error`] says why.
    pub acked: bool,
    /// The publish failure, when not acked.
    pub ckpt_error: Option<io::Error>,
}

/// The single-writer trainer of the live loop. See the module docs for
/// the durability contract.
pub struct LiveTrainer {
    fs: Arc<dyn Vfs>,
    dir: PathBuf,
    cfg: LiveConfig,
    seed: u64,
    model: Model,
    /// Last completed (trained, possibly unacked) epoch.
    epoch: u64,
    /// Last durably published epoch.
    acked_epoch: u64,
    /// Epoch of the last durable full snapshot.
    snapshot_epoch: u64,
    /// User rows touched since `acked_epoch`, kept sorted on write.
    touched_p: std::collections::BTreeSet<u32>,
    touched_q: std::collections::BTreeSet<u32>,
    pending: Vec<(u32, u32, f32)>,
    live: Arc<LiveStore>,
}

impl LiveTrainer {
    /// Starts a live loop from a trained model: writes the base
    /// snapshot at `meta.epoch` (everything later chains from it) and
    /// begins serving it.
    ///
    /// # Errors
    ///
    /// The base snapshot write — without a durable base there is
    /// nothing to recover to, so the loop refuses to start.
    pub fn bootstrap(
        fs: Arc<dyn Vfs>,
        dir: PathBuf,
        model: Model,
        meta: CheckpointMeta,
        cfg: LiveConfig,
    ) -> io::Result<LiveTrainer> {
        assert!(cfg.snapshot_every >= 1, "snapshot_every must be ≥ 1");
        let name = checkpoint::epoch_file_name(meta.epoch);
        fs.publish(&dir, &name, &mut |w| {
            checkpoint::write_checkpoint(&model, meta, w)
        })?;
        let live = LiveStore::new(FactorStore::with_precision(
            model.clone(),
            meta.epoch,
            cfg.precision,
        ));
        Ok(LiveTrainer {
            fs,
            dir,
            cfg,
            seed: meta.seed,
            model,
            epoch: meta.epoch,
            acked_epoch: meta.epoch,
            snapshot_epoch: meta.epoch,
            touched_p: Default::default(),
            touched_q: Default::default(),
            pending: Vec::new(),
            live,
        })
    }

    /// Resumes a live loop from a [`Recovery`] — the restart path after
    /// a crash. No write happens: the recovered epoch is already
    /// durable; the next snapshot is due `snapshot_every` epochs after
    /// the recovered chain's base.
    pub fn resume(
        fs: Arc<dyn Vfs>,
        dir: PathBuf,
        recovery: Recovery,
        cfg: LiveConfig,
    ) -> LiveTrainer {
        assert!(cfg.snapshot_every >= 1, "snapshot_every must be ≥ 1");
        let ck = recovery.checkpoint;
        let live = LiveStore::new(FactorStore::with_precision(
            ck.model.clone(),
            ck.meta.epoch,
            cfg.precision,
        ));
        LiveTrainer {
            fs,
            dir,
            cfg,
            seed: ck.meta.seed,
            epoch: ck.meta.epoch,
            acked_epoch: ck.meta.epoch,
            snapshot_epoch: recovery.base_epoch,
            model: ck.model,
            touched_p: Default::default(),
            touched_q: Default::default(),
            pending: Vec::new(),
            live,
        }
    }

    /// Queues one rating for the next epoch. Unseen user/item ids are
    /// folded in when the epoch runs.
    pub fn ingest(&mut self, user: u32, item: u32, rating: f32) {
        self.pending.push((user, item, rating));
    }

    /// Ratings queued for the next epoch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The reader handle; clone freely across threads.
    pub fn live(&self) -> Arc<LiveStore> {
        self.live.clone()
    }

    /// The trainer's current model (the state serving will hold after
    /// the next publish).
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Last completed epoch (may be ahead of [`LiveTrainer::acked_epoch`]
    /// when checkpoint writes are failing).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Last durably published epoch.
    pub fn acked_epoch(&self) -> u64 {
        self.acked_epoch
    }

    /// A deterministic placeholder factor row for an id that arrived
    /// with no usable ratings (e.g. a new user whose only ratings name
    /// new items): small pseudo-random entries derived from
    /// `(seed, side, id)`, the live-loop analogue of `Model::init`.
    fn seeded_row(&self, side: u8, id: u32) -> Vec<f32> {
        let k = self.model.k();
        let scale = 1.0 / (k as f32).sqrt();
        (0..k)
            .map(|j| {
                let h = crate::hash::xxh64(
                    &[
                        self.seed.to_le_bytes().as_slice(),
                        &[side],
                        &id.to_le_bytes(),
                        &(j as u32).to_le_bytes(),
                    ]
                    .concat(),
                );
                (h >> 40) as f32 / (1u64 << 24) as f32 * scale
            })
            .collect()
    }

    /// Grows the model with fold-in rows for every unseen user/item in
    /// `batch`. Items first (against existing user factors), then users
    /// (against the now-complete item set) — a deterministic policy, so
    /// replaying the same ingest stream reproduces the same factors.
    /// Returns `(new_users, new_items)`.
    fn fold_in_unseen(&mut self, batch: &[(u32, u32, f32)]) -> (u32, u32) {
        let (m0, n0) = (self.model.nrows(), self.model.ncols());
        let max_item = batch.iter().map(|&(_, v, _)| v).max().unwrap_or(0);
        let max_user = batch.iter().map(|&(u, _, _)| u).max().unwrap_or(0);

        // Items: solve each new row against frozen existing-user
        // factors, then append all rows at once.
        if max_item >= n0 {
            let fold = FoldIn::with_config(&self.model, self.cfg.foldin);
            let mut rows: Vec<Vec<f32>> = Vec::new();
            for v in n0..=max_item {
                let ratings: Vec<(u32, f32)> = batch
                    .iter()
                    .filter(|&&(u, bv, _)| bv == v && u < m0)
                    .map(|&(u, _, r)| (u, r))
                    .collect();
                rows.push(if ratings.is_empty() {
                    self.seeded_row(b'Q', v)
                } else {
                    fold.new_item(&ratings)
                });
            }
            let (m, n, k, p, mut q) =
                std::mem::replace(&mut self.model, Model::constant(1, 1, 1, 0.0)).into_parts();
            for row in &rows {
                q.extend_from_slice(row);
            }
            self.model = Model::from_parts(m, n + rows.len() as u32, k, p, q);
            self.touched_q.extend(n0..=max_item);
        }

        // Users: every item an id rates now exists.
        if max_user >= m0 {
            let fold = FoldIn::with_config(&self.model, self.cfg.foldin);
            let mut rows: Vec<Vec<f32>> = Vec::new();
            for u in m0..=max_user {
                let ratings: Vec<(u32, f32)> = batch
                    .iter()
                    .filter(|&&(bu, _, _)| bu == u)
                    .map(|&(_, v, r)| (v, r))
                    .collect();
                rows.push(if ratings.is_empty() {
                    self.seeded_row(b'P', u)
                } else {
                    fold.new_user(&ratings)
                });
            }
            let (m, n, k, mut p, q) =
                std::mem::replace(&mut self.model, Model::constant(1, 1, 1, 0.0)).into_parts();
            for row in &rows {
                p.extend_from_slice(row);
            }
            self.model = Model::from_parts(m + rows.len() as u32, n, k, p, q);
            self.touched_p.extend(m0..=max_user);
        }
        (self.model.nrows() - m0, self.model.ncols() - n0)
    }

    /// Runs one epoch: fold in unseen ids, SGD over the pending
    /// ratings, persist (delta or re-basing snapshot), publish the new
    /// serving version. Never fails the *training* side: a checkpoint
    /// write error leaves the epoch unacked (see the module docs) and
    /// is reported in the returned [`EpochReport`].
    pub fn step(&mut self) -> EpochReport {
        let batch = std::mem::take(&mut self.pending);
        let (folded_users, folded_items) = self.fold_in_unseen(&batch);
        for _ in 0..self.cfg.passes {
            for &(u, v, r) in &batch {
                let (pu, qv) = self.model.pq_rows_mut(u, v);
                kernel::sgd_step(pu, qv, r, self.cfg.gamma, self.cfg.lambda, self.cfg.lambda);
            }
        }
        for &(u, v, _) in &batch {
            self.touched_p.insert(u);
            self.touched_q.insert(v);
        }
        self.epoch += 1;
        self.live.mark_trained(self.epoch);

        // Persist: re-base with a full snapshot when the delta chain is
        // long enough, else a delta of everything touched since the
        // last *acked* epoch.
        let snapshot_due = self.epoch - self.snapshot_epoch >= self.cfg.snapshot_every;
        let (kind, name) = if snapshot_due {
            (
                RecordKind::Snapshot,
                checkpoint::epoch_file_name(self.epoch),
            )
        } else {
            (RecordKind::Delta, delta::delta_file_name(self.epoch))
        };
        let mut bytes = 0u64;
        let write_res = {
            let model = &self.model;
            let seed = self.seed;
            let epoch = self.epoch;
            let base_epoch = self.acked_epoch;
            let p_rows: Vec<u32> = self.touched_p.iter().copied().collect();
            let q_rows: Vec<u32> = self.touched_q.iter().copied().collect();
            let bytes_out = &mut bytes;
            self.fs.publish(&self.dir, &name, &mut |w| {
                let mut w = CountingWriter { inner: w, count: 0 };
                let res = match kind {
                    RecordKind::Snapshot => {
                        checkpoint::write_checkpoint(model, CheckpointMeta { seed, epoch }, &mut w)
                    }
                    RecordKind::Delta => delta::write_delta(
                        model,
                        DeltaMeta {
                            seed,
                            epoch,
                            base_epoch,
                        },
                        &p_rows,
                        &q_rows,
                        &mut w,
                    ),
                };
                *bytes_out = w.count;
                res
            })
        };
        let (acked, ckpt_error) = match write_res {
            Ok(()) => {
                self.acked_epoch = self.epoch;
                if kind == RecordKind::Snapshot {
                    self.snapshot_epoch = self.epoch;
                }
                self.touched_p.clear();
                self.touched_q.clear();
                (true, None)
            }
            // Unacked: touched rows stay put and roll into the next
            // record, whose base is still the last acked epoch.
            Err(e) => (false, Some(e)),
        };

        self.live.publish(FactorStore::with_precision(
            self.model.clone(),
            self.epoch,
            self.cfg.precision,
        ));
        EpochReport {
            epoch: self.epoch,
            ingested: batch.len(),
            folded_users,
            folded_items,
            kind,
            file: name,
            bytes,
            acked,
            ckpt_error,
        }
    }
}

impl std::fmt::Debug for LiveTrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveTrainer")
            .field("epoch", &self.epoch)
            .field("acked_epoch", &self.acked_epoch)
            .field("snapshot_epoch", &self.snapshot_epoch)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// Counts bytes flowing through a writer (for [`EpochReport::bytes`]).
struct CountingWriter<'a> {
    inner: &'a mut dyn Write,
    count: u64,
}

impl Write for CountingWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.count += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Query, QueryUser};
    use crate::vfs::RealFs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mf_serve_live_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn boot(dir: &std::path::Path, cfg: LiveConfig) -> LiveTrainer {
        LiveTrainer::bootstrap(
            Arc::new(RealFs),
            dir.to_path_buf(),
            Model::init(10, 12, 4, 7),
            CheckpointMeta { seed: 7, epoch: 0 },
            cfg,
        )
        .unwrap()
    }

    #[test]
    fn epochs_ack_deltas_and_rebase_snapshots() {
        let dir = tmp_dir("ack");
        let mut t = boot(
            &dir,
            LiveConfig {
                snapshot_every: 3,
                ..Default::default()
            },
        );
        for e in 1..=6u64 {
            t.ingest(e as u32 % 10, e as u32 % 12, 3.0);
            let rep = t.step();
            assert!(rep.acked, "epoch {e}: {:?}", rep.ckpt_error);
            assert_eq!(rep.epoch, e);
            let expect_snapshot = e % 3 == 0;
            assert_eq!(
                rep.kind == RecordKind::Snapshot,
                expect_snapshot,
                "epoch {e}"
            );
            assert!(rep.bytes > 0);
        }
        // Recovery of the directory lands exactly on the last epoch.
        let rec = delta::recover(&dir).unwrap();
        assert_eq!(rec.epoch(), 6);
        assert_eq!(rec.base_epoch, 6); // epoch 6 was itself a snapshot
        assert_eq!(rec.checkpoint.model, *t.model());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn unseen_ids_grow_the_model_and_survive_recovery() {
        let dir = tmp_dir("grow");
        let mut t = boot(&dir, LiveConfig::default());
        // User 10 and item 12 don't exist yet; item 13 arrives rated
        // only by the new user (the degenerate new×new pair).
        t.ingest(10, 3, 4.0);
        t.ingest(10, 13, 5.0);
        t.ingest(2, 12, 1.0);
        let rep = t.step();
        assert!(rep.acked);
        assert_eq!((rep.folded_users, rep.folded_items), (1, 2));
        assert_eq!(t.model().nrows(), 11);
        assert_eq!(t.model().ncols(), 14);
        // The new rows are real (non-zero) factors.
        assert!(t.model().p_row(10).iter().any(|&x| x != 0.0));
        assert!(t.model().q_row(13).iter().any(|&x| x != 0.0));
        let rec = delta::recover(&dir).unwrap();
        assert_eq!(rec.checkpoint.model, *t.model());
        assert_eq!(rec.deltas_applied, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn readers_swap_atomically_and_observe_bounded_lag() {
        let dir = tmp_dir("swap");
        let mut t = boot(&dir, LiveConfig::default());
        let live = t.live();
        let before = live.current();
        assert_eq!(before.epoch(), 0);
        t.ingest(1, 1, 5.0);
        t.step();
        // The old handle still serves version 0, complete and intact.
        assert_eq!(before.epoch(), 0);
        let after = live.current();
        assert_eq!(after.epoch(), 1);
        assert_eq!(live.serving_epoch(), 1);
        assert_eq!(live.swaps(), 1);
        // Every factor row in the new store matches the trainer model —
        // no partially-swapped hybrid.
        for u in 0..t.model().nrows() {
            assert_eq!(after.user_factor(u), t.model().p_row(u));
        }
        let top = after.serve_one(&Query {
            user: QueryUser::Id(1),
            count: 3,
            exclude: vec![],
        });
        assert_eq!(top.items.len(), 3);
        let lag = live.lag_stats();
        assert!(lag.count() >= 2);
        assert_eq!(lag.max(), 0, "single-threaded reads always see fresh state");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    #[should_panic(expected = "non-monotonic publish")]
    fn non_monotonic_publish_panics() {
        let live = LiveStore::new(FactorStore::new(Model::init(2, 2, 2, 1), 5));
        live.publish(FactorStore::new(Model::init(2, 2, 2, 1), 5));
    }

    #[test]
    fn resume_continues_the_chain() {
        let dir = tmp_dir("resume");
        let mut t = boot(&dir, LiveConfig::default());
        for i in 0..3 {
            t.ingest(i, i, 2.0);
            assert!(t.step().acked);
        }
        let model_at_3 = t.model().clone();
        drop(t);
        let rec = delta::recover(&dir).unwrap();
        assert_eq!(rec.epoch(), 3);
        let mut t2 = LiveTrainer::resume(Arc::new(RealFs), dir.clone(), rec, LiveConfig::default());
        assert_eq!(*t2.model(), model_at_3);
        t2.ingest(0, 1, 4.0);
        let rep = t2.step();
        assert!(rep.acked);
        assert_eq!(rep.epoch, 4);
        let rec2 = delta::recover(&dir).unwrap();
        assert_eq!(rec2.epoch(), 4);
        assert_eq!(rec2.checkpoint.model, *t2.model());
        let _ = std::fs::remove_dir_all(dir);
    }
}
