//! The full artifact lifecycle: train → checkpoint per epoch → load →
//! fold-in a brand-new user → serve batched top-k from the factor store.
//!
//! This is the deployment loop the `mf-serve` crate exists for: the
//! trainer emits one `MFCK` checkpoint per epoch (byte format in
//! `docs/FORMAT.md`), a serving process loads the latest one into a
//! tiled [`FactorStore`], and traffic — including users who did not
//! exist at training time — is answered without touching the trainer.
//!
//! Run with: `cargo run --release --example serve_topk`

use hsgd_star::data::{preset, PresetName};
use hsgd_star::hetero::layout::uniform_layout;
use hsgd_star::hetero::scheduler::UniformScheduler;
use hsgd_star::hetero::trainer::{run_training_with_hook, DevicePool};
use hsgd_star::hetero::{CostModelKind, CpuSpec, HeteroConfig};
use hsgd_star::serve::{checkpoint, FactorStore, FoldIn, Query, QueryUser};
use hsgd_star::sgd::{HyperParams, LearningRate};

fn main() {
    // 1. Train on a MovieLens-shaped dataset, checkpointing every epoch.
    const SCALE: u64 = 800;
    let ds = preset(PresetName::MovieLens, SCALE, 7).build();
    println!(
        "dataset: {} users × {} items, {} train ratings",
        ds.train.nrows(),
        ds.train.ncols(),
        ds.train.nnz()
    );

    let cfg = HeteroConfig {
        hyper: HyperParams {
            k: 16,
            lambda_p: 0.05,
            lambda_q: 0.05,
            gamma: 0.01,
            schedule: LearningRate::Fixed,
        },
        nc: 4,
        ng: 0,
        gpu: hsgd_star::gpu::GpuSpec::quadro_p4000().scaled_down(SCALE as f64),
        cpu: CpuSpec::default().scaled_down(SCALE as f64),
        iterations: 12,
        seed: 7,
        dynamic_scheduling: true,
        cost_model: CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    let ckpt_dir = std::env::temp_dir().join("hsgd_star_serve_topk");
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");

    let spec = uniform_layout(&ds.train, 5, 4);
    let sched = UniformScheduler::new(spec, cfg.iterations, true);
    let pool = DevicePool {
        cpu_workers: 4,
        gpus: vec![],
        gpu_start: vec![],
    };
    let out = run_training_with_hook(
        &ds.train,
        &ds.test,
        sched,
        pool,
        &cfg,
        None,
        "CPU-Only",
        checkpoint::epoch_hook(ckpt_dir.clone(), cfg.seed),
    );
    println!(
        "trained {} epochs, test RMSE {:.4}; checkpoints in {}",
        cfg.iterations,
        out.report.final_test_rmse,
        ckpt_dir.display()
    );

    // 2. Load the last checkpoint — a different process would start here.
    let last = ckpt_dir.join(checkpoint::epoch_file_name(cfg.iterations as u64));
    let ckpt = checkpoint::load(&last).expect("load checkpoint");
    assert_eq!(
        ckpt.model, out.model,
        "checkpoint round-trip must be bit-identical"
    );
    println!(
        "loaded {} (epoch {}, seed {}) — bit-identical to the trained model",
        last.display(),
        ckpt.meta.epoch,
        ckpt.meta.seed
    );

    // 3. Fold in a brand-new user from a handful of ratings: they loved
    //    the items user 0 rated highest and hated user 0's lowest.
    let liked: Vec<(u32, f32)> = out
        .model
        .recommend(0, &[], 3)
        .iter()
        .map(|&(v, _)| (v, 5.0))
        .collect();
    let model_for_foldin = ckpt.model.clone();
    let fold = FoldIn::new(&model_for_foldin);
    let new_user_factor = fold.new_user(&liked);
    println!(
        "\nfolded in a new user from {} ratings (no retrain, {} SGD passes over one row)",
        liked.len(),
        fold.config().passes
    );

    // 4. Serve a mixed batch: stored users and the folded-in newcomer.
    let store = FactorStore::from_checkpoint(ckpt).with_cache(1024);
    let mut queries: Vec<Query> = (0..3).map(|u| Query::top_k(u, 5)).collect();
    queries.push(Query {
        user: QueryUser::Factor(new_user_factor),
        count: 5,
        exclude: liked.iter().map(|&(v, _)| v).collect(),
    });
    let answers = store.serve_batch(&queries);
    println!(
        "serving epoch {}: {} item tiles, {} queries answered\n",
        store.epoch(),
        store.ntiles(),
        answers.len()
    );
    for (i, top) in answers.iter().enumerate() {
        let who = if i < 3 {
            format!("user{i}")
        } else {
            "new user (fold-in)".to_string()
        };
        let items: Vec<String> = top
            .items
            .iter()
            .map(|(v, s)| format!("item{v} ({s:.2})"))
            .collect();
        println!("  {who}: {}", items.join(", "));
    }

    // Re-serving the same batch hits the LRU cache for the stored users.
    let again = store.serve_batch(&queries);
    assert_eq!(answers, again, "cached answers must be identical");
    let stats = store.cache_stats();
    println!(
        "\nre-served the batch: {} cache hits / {} misses (fold-in queries always scan)",
        stats.hits, stats.misses
    );

    let _ = std::fs::remove_dir_all(ckpt_dir);
}
