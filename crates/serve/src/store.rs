//! The read-optimized factor store and the batched top-k query path.
//!
//! Training wants factors mutable and block-partitioned; serving wants
//! them immutable and *scan-friendly*. [`FactorStore`] re-shards a
//! trained model's item factors into fixed-size **tiles** — contiguous
//! runs of [`TILE_ITEMS`] item rows, each with its item norms and the
//! tile-maximum norm precomputed — and answers top-k queries by scanning
//! tiles in item order with a Cauchy–Schwarz prune: a tile whose bound
//! `|p|·max_norm` cannot strictly beat the current k-th best score is
//! skipped whole. The prune never changes the answer (see the
//! determinism argument in ARCHITECTURE.md → "Serving & persistence"):
//! items are visited in ascending id, ties break toward lower ids, and a
//! skipped tile is skipped precisely because no item in it can win a
//! tie-break or a strict comparison.
//!
//! [`FactorStore::serve_batch`] fans a query batch over the `mf-par`
//! pool — query chunks as tasks, results written back in query order —
//! so the output is **bit-identical for any thread count**: per-query
//! work shares no mutable state, and an optional LRU result cache
//! (keyed on `(user, epoch, count, canonicalized exclude list)`) only
//! ever returns values equal to what recomputation would produce.
//! [`FactorStore::sweep_batch`] (in [`crate::batch`]) is the
//! throughput path: it plans the batch, dedups identical queries, and
//! streams each tile through the core **once per batch** with the
//! `mf-sgd` panel kernel — same bits, one catalog pass.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Mutex;

use gpu_sim::simt::{f16_bits, f16_from_bits};
use mf_par::ThreadPool;
use mf_sgd::{kernel, Model};

/// Item rows per tile. 512 rows at k = 32 is a 64 KiB factor block —
/// the scan works through one L2-resident tile at a time while the
/// norms array (2 KiB) rides along in L1.
pub const TILE_ITEMS: usize = 512;

/// How item factors are stored at rest inside the serving tiles.
///
/// Reduced precisions shrink the resident catalog (and the memory
/// traffic per sweep); **scoring always accumulates in f32** over the
/// dequantized rows, and the per-item norms — and therefore every
/// Cauchy–Schwarz prune bound — are computed from the *dequantized*
/// values, so the prune stays exact over the scores the store actually
/// serves. A reduced-precision store answers exactly like an f32 store
/// built from its dequantized rows; only the rows themselves carry
/// quantization error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Full-precision rows: answers bit-identical to [`Model::recommend`]
    /// on the source model.
    #[default]
    F32,
    /// IEEE binary16 rows (bit-stored as `u16`, [`gpu_sim::simt::f16_round`]
    /// semantics): 2 bytes/element, ≤ 2⁻¹¹ relative error per element.
    F16,
    /// Per-row affine u8 codes (`scale = (max − min)/255`, offset
    /// `min`): 1 byte/element + one f32 scale and offset per row,
    /// ≤ scale/2 absolute error per element. Affine beats a symmetric
    /// `max|x|/127` scale because factor rows are rarely centred on
    /// zero — fresh [`Model::init`] rows are entirely non-negative, so
    /// a symmetric code would waste half its range on values that never
    /// occur; min/max always spends all 256 codes on the row's actual
    /// span.
    Int8,
}

impl Precision {
    /// Stable lowercase name (bench/JSON label).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }
}

/// The at-rest encoding of one tile's `len × k` row-major factor rows.
pub(crate) enum TileData {
    /// Rows exactly as trained.
    F32(Vec<f32>),
    /// binary16 bit patterns; decode with [`f16_from_bits`].
    F16(Vec<u16>),
    /// Per-row affine codes: element = `zero[row] + code · scale[row]`.
    Int8 {
        codes: Vec<u8>,
        scales: Vec<f32>,
        zeros: Vec<f32>,
    },
}

/// One contiguous shard of item factors.
pub(crate) struct Tile {
    /// First item id in the tile.
    pub(crate) base: u32,
    /// `len × k` row-major factor rows, possibly quantized.
    pub(crate) data: TileData,
    /// Per-item Euclidean norms `|q_v|` **of the dequantized rows** —
    /// the values scoring actually dots against — so the prune bounds
    /// cover the served scores exactly, at any precision.
    pub(crate) norms: Vec<f32>,
    /// `max(norms)` — the tile's prune bound.
    pub(crate) max_norm: f32,
}

impl Tile {
    /// Decodes item row `i` to f32. F32 tiles return the stored slice
    /// directly (no copy); quantized tiles decode into `scratch[..k]`.
    pub(crate) fn row<'a>(&'a self, i: usize, k: usize, scratch: &'a mut [f32]) -> &'a [f32] {
        match &self.data {
            TileData::F32(f) => &f[i * k..(i + 1) * k],
            TileData::F16(bits) => {
                for (d, &s) in scratch[..k].iter_mut().zip(&bits[i * k..(i + 1) * k]) {
                    *d = f16_from_bits(s);
                }
                &scratch[..k]
            }
            TileData::Int8 {
                codes,
                scales,
                zeros,
            } => {
                let (sc, z) = (scales[i], zeros[i]);
                for (d, &c) in scratch[..k].iter_mut().zip(&codes[i * k..(i + 1) * k]) {
                    *d = z + c as f32 * sc;
                }
                &scratch[..k]
            }
        }
    }

    /// Decodes the whole tile to f32 rows. F32 tiles return the stored
    /// buffer (no copy); quantized tiles decode into `scratch` — the
    /// batched sweep calls this **once per tile per batch run**, so the
    /// decode cost is amortized over every query panel in the run.
    pub(crate) fn decode_all<'a>(&'a self, k: usize, scratch: &'a mut Vec<f32>) -> &'a [f32] {
        match &self.data {
            TileData::F32(f) => f,
            TileData::F16(bits) => {
                scratch.clear();
                scratch.extend(bits.iter().map(|&b| f16_from_bits(b)));
                scratch
            }
            TileData::Int8 {
                codes,
                scales,
                zeros,
            } => {
                scratch.clear();
                scratch.reserve(codes.len());
                for ((row, &sc), &z) in codes.chunks_exact(k).zip(scales).zip(zeros) {
                    scratch.extend(row.iter().map(|&c| z + c as f32 * sc));
                }
                scratch
            }
        }
    }

    /// Resident bytes of the at-rest factor encoding (codes + scales).
    fn factor_bytes(&self) -> usize {
        match &self.data {
            TileData::F32(f) => std::mem::size_of_val(f.as_slice()),
            TileData::F16(b) => std::mem::size_of_val(b.as_slice()),
            TileData::Int8 {
                codes,
                scales,
                zeros,
            } => {
                std::mem::size_of_val(codes.as_slice())
                    + std::mem::size_of_val(scales.as_slice())
                    + std::mem::size_of_val(zeros.as_slice())
            }
        }
    }
}

/// Encodes one tile's rows at the requested precision and returns the
/// at-rest data alongside the dequantized rows (what scoring will see —
/// norms must be computed from these).
fn encode_tile(rows: &[f32], k: usize, precision: Precision) -> (TileData, Vec<f32>) {
    match precision {
        Precision::F32 => (TileData::F32(rows.to_vec()), rows.to_vec()),
        Precision::F16 => {
            let bits: Vec<u16> = rows.iter().map(|&x| f16_bits(x)).collect();
            let deq: Vec<f32> = bits.iter().map(|&b| f16_from_bits(b)).collect();
            (TileData::F16(bits), deq)
        }
        Precision::Int8 => {
            let nrows = rows.len() / k;
            let mut codes = Vec::with_capacity(rows.len());
            let mut scales = Vec::with_capacity(nrows);
            let mut zeros = Vec::with_capacity(nrows);
            for row in rows.chunks_exact(k) {
                // Affine per-row scale over the row's actual [min, max]
                // span. NaN must *propagate* (IEEE `min`/`max` would
                // drop it), so a NaN row gets a NaN scale and offset —
                // its dequantized elements are NaN, its norm is NaN,
                // and the existing NaN-norm handling keeps the tile
                // unprunable, exactly like an f32 store with NaN rows.
                let (lo, hi) = if row.iter().any(|x| x.is_nan()) {
                    (f32::NAN, f32::NAN)
                } else {
                    row.iter()
                        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &b| {
                            (lo.min(b), hi.max(b))
                        })
                };
                let scale = (hi - lo) / 255.0;
                // A flat row (scale 0) encodes every element as code 0
                // and decodes to `lo` exactly; `NaN as u8` and inf
                // spans land on code 0 too — correctness only needs
                // decode(encode(row)) to be what the norms (and the
                // test oracle) are built from.
                codes.extend(row.iter().map(|&x| ((x - lo) / scale).round() as u8));
                scales.push(scale);
                zeros.push(lo);
            }
            let deq: Vec<f32> = codes
                .chunks_exact(k)
                .zip(scales.iter().zip(&zeros))
                .flat_map(|(row, (&sc, &z))| row.iter().map(move |&c| z + c as f32 * sc))
                .collect();
            (
                TileData::Int8 {
                    codes,
                    scales,
                    zeros,
                },
                deq,
            )
        }
    }
}

/// Widens every Cauchy–Schwarz bound past the computed-arithmetic
/// rounding window (see the comment in [`FactorStore::serve_one`]'s
/// scan), so a prune can only ever skip provably-losing work. Shared by
/// the serial scan and the batched tile sweep ([`crate::batch`]), which
/// must prune under identical conditions to stay answer-identical.
pub(crate) const BOUND_SLACK: f32 = 1.0 + 1e-4;

/// Whether a Cauchy–Schwarz `bound` proves that nothing it covers can
/// displace the current k-th best `worst` under the oracle's *total*
/// order. IEEE `<=` would also skip a `+0.0` bound against a `−0.0`
/// worst (which `total_cmp` ranks strictly lower), and a NaN on either
/// side makes the bound meaningless — Cauchy–Schwarz says nothing about
/// NaN scores, so NaN disables pruning.
#[inline]
pub(crate) fn prunable(bound: f32, worst: f32) -> bool {
    !bound.is_nan() && !worst.is_nan() && bound.total_cmp(&worst) != Ordering::Greater
}

/// Who a query scores for.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryUser {
    /// A user the store has factors for (checkpointed `P` row).
    Id(u32),
    /// An explicit factor vector — the hand-off from
    /// [`crate::foldin::FoldIn::new_user`], which is exactly how a
    /// fold-in user gets served without a retrain or a store rebuild.
    Factor(Vec<f32>),
}

/// One top-k request.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Whose factor to score with.
    pub user: QueryUser,
    /// How many items to return (`count = 0` is answered with an empty
    /// result).
    pub count: usize,
    /// Item ids to withhold (already-seen items). May be unsorted and
    /// contain duplicates or out-of-range ids.
    pub exclude: Vec<u32>,
}

impl Query {
    /// A plain top-`count` query for a known user.
    pub fn top_k(user: u32, count: usize) -> Query {
        Query {
            user: QueryUser::Id(user),
            count,
            exclude: Vec::new(),
        }
    }
}

/// A query answer: `(item, score)` pairs sorted by score descending,
/// exact ties by ascending item id — the same total order as
/// [`Model::recommend`], which doubles as this type's serial oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    /// The ranked items.
    pub items: Vec<(u32, f32)>,
}

/// Max-heap entry ordered so the heap's *top* is the current **loser**:
/// lowest score first, ties preferring to evict the *larger* item id
/// (the one that loses the ascending-id tie-break).
pub(crate) struct Worst {
    pub(crate) item: u32,
    pub(crate) score: f32,
}

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Counters the example and benches print; cheap enough to keep always.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Queries answered from the LRU cache.
    pub hits: u64,
    /// Queries that went to the scan.
    pub misses: u64,
}

/// A cache key: `(user, epoch, count, sorted-deduped exclude list)`.
/// The exclude list is stored canonicalized and whole — not hashed — so
/// two queries share an entry exactly when they are semantically the
/// same query; a digest here would let a collision serve one query
/// another's withheld items.
pub(crate) type CacheKey = (u32, u64, usize, Vec<u32>);

/// The LRU result cache. Plain `HashMap` + logical clock: a hit
/// refreshes the entry's stamp, insertion past capacity evicts the
/// stalest entry. Eviction is `O(len)` — at serving cache sizes
/// (hundreds to low thousands of entries) a scan is faster than
/// maintaining an intrusive list, and the map stays std-only.
pub(crate) struct Lru {
    cap: usize,
    tick: u64,
    map: HashMap<CacheKey, (u64, TopK)>,
}

impl Lru {
    pub(crate) fn get(&mut self, key: &CacheKey) -> Option<TopK> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|slot| {
            slot.0 = tick;
            slot.1.clone()
        })
    }

    pub(crate) fn insert(&mut self, key: CacheKey, value: TopK) {
        self.tick += 1;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(stalest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }
}

/// The serving store: tiled item factors, user factors, and an optional
/// result cache. Build one per loaded checkpoint.
pub struct FactorStore {
    k: usize,
    m: u32,
    n: u32,
    epoch: u64,
    precision: Precision,
    /// User factors, row-major (`m × k`). Always f32: there are far
    /// fewer resident user rows than item rows, and keeping the query
    /// side exact means quantization error enters each score once.
    p: Vec<f32>,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) cache: Option<Mutex<Lru>>,
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
}

impl FactorStore {
    /// Builds a store from a trained model, consuming it (the factor
    /// buffers are re-sharded, not copied twice). `epoch` is the
    /// checkpoint epoch the factors came from; it keys the result cache
    /// so two stores of one training run never alias entries.
    pub fn new(model: Model, epoch: u64) -> FactorStore {
        FactorStore::with_precision(model, epoch, Precision::F32)
    }

    /// [`FactorStore::new`] with an explicit at-rest item-factor
    /// precision. Scoring accumulates in f32 at every precision and all
    /// prune bounds are derived from the dequantized rows, so the
    /// answers are exactly those of an f32 store built from the
    /// dequantized factors (see [`Precision`]).
    pub fn with_precision(model: Model, epoch: u64, precision: Precision) -> FactorStore {
        let (m, n, k, p, q) = model.into_parts();
        let mut tiles = Vec::with_capacity((n as usize).div_ceil(TILE_ITEMS));
        for tile_ix in 0..(n as usize).div_ceil(TILE_ITEMS) {
            let base = tile_ix * TILE_ITEMS;
            let len = TILE_ITEMS.min(n as usize - base);
            let (data, served) = encode_tile(&q[base * k..(base + len) * k], k, precision);
            let norms: Vec<f32> = (0..len)
                .map(|i| {
                    served[i * k..(i + 1) * k]
                        .iter()
                        .map(|x| x * x)
                        .sum::<f32>()
                        .sqrt()
                })
                .collect();
            // A NaN factor row has a NaN norm; `f32::max` would *drop*
            // it (returning the other operand), producing a finite tile
            // bound that lets the prune skip an item the oracle ranks
            // first (total_cmp puts NaN above +∞). Force such tiles
            // unprunable instead.
            let max_norm =
                norms.iter().fold(
                    0.0f32,
                    |a, &b| {
                        if b.is_nan() {
                            f32::INFINITY
                        } else {
                            a.max(b)
                        }
                    },
                );
            tiles.push(Tile {
                base: base as u32,
                data,
                norms,
                max_norm,
            });
        }
        FactorStore {
            k,
            m,
            n,
            epoch,
            precision,
            p,
            tiles,
            cache: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Builds a store straight from a loaded checkpoint (the epoch comes
    /// from the header).
    pub fn from_checkpoint(ckpt: crate::checkpoint::Checkpoint) -> FactorStore {
        let epoch = ckpt.meta.epoch;
        FactorStore::new(ckpt.model, epoch)
    }

    /// Enables the LRU result cache with room for `capacity` answers.
    pub fn with_cache(mut self, capacity: usize) -> FactorStore {
        assert!(capacity > 0, "cache capacity must be positive");
        self.cache = Some(Mutex::new(Lru {
            cap: capacity,
            tick: 0,
            map: HashMap::new(),
        }));
        self
    }

    /// Latent dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of users with stored factors.
    pub fn nusers(&self) -> u32 {
        self.m
    }

    /// Number of items in the catalog.
    pub fn nitems(&self) -> u32 {
        self.n
    }

    /// Checkpoint epoch the store serves.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of item tiles.
    pub fn ntiles(&self) -> usize {
        self.tiles.len()
    }

    /// The at-rest precision of the item factors.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Resident bytes of at-rest item-factor data across all tiles
    /// (codes plus per-row scales/offsets; norms and user factors
    /// excluded) —
    /// the number the `serving_quantized` bench reports.
    pub fn resident_factor_bytes(&self) -> usize {
        self.tiles.iter().map(Tile::factor_bytes).sum()
    }

    /// Item `v`'s factor row *as served*: the dequantized f32 values
    /// scoring dots against. For `Precision::F32` this is the trained
    /// row exactly; tests rebuild the store's exact-answer oracle from
    /// these rows.
    pub fn item_row_f32(&self, v: u32) -> Vec<f32> {
        assert!(v < self.n, "item {v} out of range");
        let tile = &self.tiles[v as usize / TILE_ITEMS];
        let mut scratch = vec![0f32; self.k];
        tile.row(v as usize % TILE_ITEMS, self.k, &mut scratch)
            .to_vec()
    }

    /// Cache hit/miss counters since construction.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
        }
    }

    /// The stored factor row of user `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn user_factor(&self, u: u32) -> &[f32] {
        assert!(u < self.m, "user {u} out of range");
        &self.p[u as usize * self.k..(u as usize + 1) * self.k]
    }

    /// Answers one query. Identical to
    /// `Model::recommend(user, &exclude, count)` on the model the store
    /// was built from — the tiled scan plus pruning is an execution
    /// strategy, not a semantics change.
    pub fn serve_one(&self, query: &Query) -> TopK {
        let key = self.cache_key(query);
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(hit) = cache.lock().expect("cache lock").get(key) {
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                return hit;
            }
            self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        }
        let result = self.scan(query);
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache
                .lock()
                .expect("cache lock")
                .insert(key, result.clone());
        }
        result
    }

    /// Answers a batch on the process-wide pool, one independent scan
    /// per query. Results land at their query's index, so the output is
    /// the same `Vec` for any thread count.
    ///
    /// This is the *per-query* batch path; queries that can share tile
    /// sweeps should go through [`FactorStore::sweep_batch`] instead,
    /// which streams each tile once per batch.
    pub fn serve_batch(&self, queries: &[Query]) -> Vec<TopK> {
        self.serve_batch_in(queries, ThreadPool::global())
    }

    /// [`FactorStore::serve_batch`] on an explicit pool.
    ///
    /// Queries are handed to the pool in *chunks* (a few per thread),
    /// not one task each: per-query tasks made the pooled path slower
    /// than serial — every `run_indexed` claim is an atomic RMW on a
    /// shared counter plus a slot lock, which at ~0.5 ms of work per
    /// query cost more than the parallelism bought back on small pools.
    /// Chunking amortizes that overhead across `CHUNK_PER_THREAD × threads`
    /// tasks while still leaving enough tasks for the pool's
    /// work-stealing to balance uneven queries.
    pub fn serve_batch_in(&self, queries: &[Query], pool: &ThreadPool) -> Vec<TopK> {
        /// Tasks per pool thread: enough slack for stealing to smooth
        /// out expensive queries, few enough that per-task overhead
        /// stays amortized.
        const CHUNK_PER_THREAD: usize = 4;
        let chunk = queries
            .len()
            .div_ceil(pool.threads() * CHUNK_PER_THREAD)
            .max(1);
        let ntasks = queries.len().div_ceil(chunk);
        let slots: Vec<Mutex<Vec<TopK>>> = (0..ntasks).map(|_| Mutex::new(Vec::new())).collect();
        pool.run_indexed(ntasks, |t| {
            let lo = t * chunk;
            let hi = (lo + chunk).min(queries.len());
            let answers: Vec<TopK> = queries[lo..hi].iter().map(|q| self.serve_one(q)).collect();
            *slots[t].lock().expect("slot lock") = answers;
        });
        slots
            .into_iter()
            .flat_map(|s| s.into_inner().expect("slot lock"))
            .collect()
    }

    /// The cache key of a query, if it is cacheable (known user id).
    /// Folded-in factors are anonymous — there is no stable identity to
    /// key on, so they always scan. The exclude list is canonicalized
    /// (sorted, deduped), so order/duplicate variants of the same query
    /// share one entry.
    pub(crate) fn cache_key(&self, query: &Query) -> Option<CacheKey> {
        self.cache.as_ref()?;
        match query.user {
            QueryUser::Id(u) => {
                let mut excl = query.exclude.clone();
                excl.sort_unstable();
                excl.dedup();
                Some((u, self.epoch, query.count, excl))
            }
            QueryUser::Factor(_) => None,
        }
    }

    /// The pruned tile scan.
    fn scan(&self, query: &Query) -> TopK {
        if query.count == 0 {
            return TopK { items: Vec::new() };
        }
        let p: &[f32] = match &query.user {
            QueryUser::Id(u) => self.user_factor(*u),
            QueryUser::Factor(f) => {
                assert_eq!(f.len(), self.k, "query factor has wrong dimension");
                f
            }
        };
        let p_norm = p.iter().map(|x| x * x).sum::<f32>().sqrt();
        let mut excluded = query.exclude.clone();
        excluded.sort_unstable();
        excluded.dedup();

        // Cauchy–Schwarz gives score ≤ |p|·|q| in exact arithmetic; the
        // *computed* dot can exceed the *computed* norm product by a few
        // ulps of accumulated rounding. BOUND_SLACK widens every bound
        // past that window so the prune can only ever skip
        // provably-losing work — keeping the scan's answer equal to the
        // unpruned oracle's bit for bit.
        let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(query.count + 1);
        // Row-decode scratch for reduced-precision tiles (f32 tiles
        // hand out their stored slice and never touch it).
        let mut row_buf = vec![0f32; self.k];
        for tile in &self.tiles {
            // Tile prune: no score inside can exceed |p|·max|q|. Once the
            // heap is full, a candidate must beat the current worst
            // *strictly* (items arrive in ascending id order, so an equal
            // score always loses the tie-break) — `bound ≤ worst` proves
            // the whole tile irrelevant. See `prunable` for why the
            // comparison runs under the oracle's total order.
            if heap.len() == query.count {
                let worst = heap.peek().expect("full heap").score;
                if prunable(p_norm * tile.max_norm * BOUND_SLACK, worst) {
                    continue;
                }
            }
            let full_exclusion_possible = !excluded.is_empty();
            for i in 0..tile.norms.len() {
                let item = tile.base + i as u32;
                if full_exclusion_possible && excluded.binary_search(&item).is_ok() {
                    continue;
                }
                // Per-item prune on the precomputed norm, same argument
                // as the tile bound.
                if heap.len() == query.count {
                    let worst = heap.peek().expect("full heap").score;
                    if prunable(p_norm * tile.norms[i] * BOUND_SLACK, worst) {
                        continue;
                    }
                }
                let score = kernel::dot(p, tile.row(i, self.k, &mut row_buf));
                if heap.len() < query.count {
                    heap.push(Worst { item, score });
                } else if score.total_cmp(&heap.peek().expect("full heap").score)
                    == Ordering::Greater
                {
                    // total_cmp, not `>`: the oracle's order ranks NaN
                    // above everything and +0.0 above −0.0, and IEEE
                    // `>` disagrees on exactly those pairs.
                    heap.pop();
                    heap.push(Worst { item, score });
                }
            }
        }
        let mut items: Vec<(u32, f32)> = heap.into_iter().map(|w| (w.item, w.score)).collect();
        items.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        TopK { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_from(model: Model) -> FactorStore {
        FactorStore::new(model, 3)
    }

    fn oracle(model: &Model, q: &Query) -> TopK {
        let u = match q.user {
            QueryUser::Id(u) => u,
            QueryUser::Factor(_) => panic!("oracle needs a known user"),
        };
        TopK {
            items: model.recommend(u, &q.exclude, q.count),
        }
    }

    #[test]
    fn matches_model_recommend() {
        let model = Model::init(8, 700, 16, 42);
        let store = store_from(model.clone());
        for user in [0u32, 3, 7] {
            for count in [1usize, 5, 50, 699, 700, 2000] {
                let q = Query::top_k(user, count);
                assert_eq!(
                    store.serve_one(&q),
                    oracle(&model, &q),
                    "user={user} count={count}"
                );
            }
        }
    }

    #[test]
    fn exclusion_matches_oracle() {
        let model = Model::init(4, 600, 8, 7);
        let store = store_from(model.clone());
        let exclude: Vec<u32> = (0..600).filter(|v| v % 3 == 0).collect();
        let q = Query {
            user: QueryUser::Id(2),
            count: 20,
            exclude,
        };
        assert_eq!(store.serve_one(&q), oracle(&model, &q));
        // Everything excluded → empty.
        let q = Query {
            user: QueryUser::Id(2),
            count: 20,
            exclude: (0..600).collect(),
        };
        assert!(store.serve_one(&q).items.is_empty());
    }

    #[test]
    fn folded_factor_queries_score_like_a_stored_row() {
        let model = Model::init(5, 300, 8, 9);
        let store = store_from(model.clone());
        // A Factor query carrying user 4's own row must answer exactly
        // like the Id query.
        let f = model.p_row(4).to_vec();
        let by_id = store.serve_one(&Query::top_k(4, 10));
        let by_factor = store.serve_one(&Query {
            user: QueryUser::Factor(f),
            count: 10,
            exclude: Vec::new(),
        });
        assert_eq!(by_id, by_factor);
    }

    #[test]
    fn batch_matches_serial() {
        let model = Model::init(16, 900, 16, 11);
        let store = store_from(model.clone());
        let queries: Vec<Query> = (0..16).map(|u| Query::top_k(u, 7)).collect();
        let serial: Vec<TopK> = queries.iter().map(|q| store.serve_one(q)).collect();
        for threads in [1usize, 2, 5] {
            let pool = ThreadPool::new(threads);
            assert_eq!(store.serve_batch_in(&queries, &pool), serial);
        }
    }

    #[test]
    fn cache_hits_return_identical_results() {
        let model = Model::init(6, 400, 8, 13);
        let store = store_from(model.clone()).with_cache(8);
        let q = Query::top_k(3, 5);
        let cold = store.serve_one(&q);
        let warm = store.serve_one(&q);
        assert_eq!(cold, warm);
        let stats = store.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Different exclude list → different key, not a stale hit.
        let q2 = Query {
            exclude: vec![cold.items[0].0],
            ..q.clone()
        };
        let shifted = store.serve_one(&q2);
        assert_ne!(cold, shifted);
        assert_eq!(shifted.items[0], cold.items[1]);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let model = Model::init(10, 100, 8, 17);
        let store = store_from(model).with_cache(2);
        let (a, b, c) = (Query::top_k(0, 3), Query::top_k(1, 3), Query::top_k(2, 3));
        store.serve_one(&a); // miss, cached
        store.serve_one(&b); // miss, cached
        store.serve_one(&a); // hit — refreshes a
        store.serve_one(&c); // miss — evicts b (stalest)
        store.serve_one(&a); // hit
        store.serve_one(&b); // miss again: b was evicted
        let stats = store.cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 4));
    }

    #[test]
    fn count_zero_is_empty() {
        let model = Model::init(2, 50, 8, 19);
        let store = store_from(model);
        assert!(store.serve_one(&Query::top_k(0, 0)).items.is_empty());
    }

    #[test]
    fn tie_break_is_ascending_item_id() {
        // Two tiles worth of items, constant factors → all scores tie.
        let n = (TILE_ITEMS + 10) as u32;
        let model = Model::constant(1, n, 2, 0.5);
        let store = store_from(model);
        let top = store.serve_one(&Query::top_k(0, 4));
        let ids: Vec<u32> = top.items.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn nan_and_signed_zero_scores_match_oracle() {
        // Checkpoints round-trip NaN payloads, so the store must rank
        // them exactly like Model::recommend's total_cmp order (NaN
        // first) — including across prunable tiles. Signed zeros get the
        // same treatment (+0.0 ranks above −0.0).
        let n = (2 * TILE_ITEMS + 50) as u32;
        let mut model = Model::init(2, n, 4, 29);
        for x in model.q_row_mut(700) {
            *x = f32::NAN;
        }
        for x in model.q_row_mut(10) {
            *x = 0.0;
        }
        let store = store_from(model.clone());
        for count in [1usize, 5, 40] {
            let q = Query::top_k(1, count);
            let got = store.serve_one(&q);
            let expect = oracle(&model, &q);
            // NaN != NaN under PartialEq, so compare ids and score bits.
            let untie = |t: &TopK| {
                t.items
                    .iter()
                    .map(|&(v, s)| (v, s.to_bits()))
                    .collect::<Vec<_>>()
            };
            assert_eq!(untie(&got), untie(&expect), "count={count}");
            assert_eq!(got.items[0].0, 700, "NaN item must rank first");
        }
    }

    #[test]
    fn multi_tile_store_matches_oracle() {
        // > 2 tiles with skewed norms so pruning actually skips tiles.
        let n = (3 * TILE_ITEMS + 77) as u32;
        let mut model = Model::init(3, n, 8, 23);
        // Inflate a band of late items so the top-k lives in the last
        // tile and earlier tiles become prunable.
        for v in (n - 40)..n {
            for x in model.q_row_mut(v) {
                *x *= 10.0;
            }
        }
        let store = store_from(model.clone());
        let q = Query::top_k(1, 25);
        assert_eq!(store.serve_one(&q), oracle(&model, &q));
    }
}
