//! Vendored offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! just enough of serde's surface for the workspace to compile: the
//! [`Serialize`] / [`Deserialize`] traits (as blanket-implemented markers)
//! and matching no-op `#[derive(...)]` macros. No serialization backend
//! (serde_json, bincode, …) exists in this environment, so nothing in the
//! workspace may rely on actual wire formats — code that wants to persist
//! models goes through explicit binary I/O (see `mf_sgd::io`) instead.
//!
//! When a real registry is available, swapping this stub for upstream
//! serde is a one-line change in the workspace manifest; the derive
//! annotations in the source are already upstream-compatible.

/// Marker for types that would be serializable under real serde.
///
/// Blanket-implemented so that generic bounds like `T: Serialize` hold
/// everywhere they would hold upstream.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}

pub use serde_derive::{Deserialize, Serialize};
