//! `hotpath_baseline` — the recorded performance baseline for the hot-path
//! layers every trainer funnels through (see [`mf_bench::hotpath`]).
//!
//! Eleven sections, each printed side by side against the path it
//! replaced, and all written to `BENCH_hotpath.json` so the repo's perf
//! trajectory has a measured point to compare future PRs against:
//!
//! 1. **Kernel** — SGD update GFLOP/s: scalar reference vs monomorphized
//!    AoS vs monomorphized SoA (the block layout trainers now use).
//! 2. **Kernel SIMD** — the explicit `mf_sgd::simd` layer at the
//!    detected level (AVX2/AVX-512) vs the same SoA loop pinned to the
//!    scalar oracle vs the autovectorized mono path.
//! 3. **Scheduler** — free-block acquire/release cost on small and large
//!    grids: the exhaustive scan vs [`mf_sparse::FreeBlockPool`] (linear
//!    scan below the threshold, two-level heap above).
//! 4. **Ingest** — the `O(nnz)` preprocessing passes: text parse, seeded
//!    shuffle, user-major grid build, CSR build; serial vs pooled.
//! 5. **Eval** — the RMSE reduction, serial vs pooled.
//! 6. **Serving** — per-query top-k queries/s against the tiled
//!    `mf-serve::FactorStore`: serial vs pooled vs warm result cache.
//! 7. **Serving load** — the batched tile sweep under Zipf traffic:
//!    saturated queries/s plus p50/p99 latency per admission batch size.
//! 8. **Serving quantized** — the same batched sweep with item tiles
//!    stored as f32 vs f16 vs int8: queries/s, resident factor bytes,
//!    and recall@10 against the f32 answers.
//! 9. **Lifecycle** — the crash-safe `mf-serve::live` loop: delta and
//!    snapshot publish MB/s, directory recovery, versioned-swap latency,
//!    and reader-observed epoch lag.
//! 10. **Out-of-core** — spill-backed training (block arena, LRU cache,
//!     prefetch thread) vs the identical run fully in RAM, at cache
//!     budgets of 100/50/25% of the partition's wire bytes.
//! 11. **End-to-end** — FPSGD (real threads) ratings/s plus final RMSE.
//!
//! Run with `--quick` for a CI smoke pass; the committed
//! `BENCH_hotpath.json` comes from a full run:
//! `cargo run --profile bench -p mf-bench --bin hotpath_baseline`.

use mf_bench::hotpath;
use mf_bench::{print_table, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let report = hotpath::run(&args);

    print_table(
        "hot path · SGD kernel (scalar vs mono-AoS vs mono-SoA)",
        &[
            "k",
            "scalar GFLOP/s",
            "mono GFLOP/s",
            "SoA GFLOP/s",
            "SoA speedup",
        ],
        &report
            .kernel
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.3}", r.scalar_gflops),
                    format!("{:.3}", r.mono_gflops),
                    format!("{:.3}", r.soa_gflops),
                    format!("{:.2}x", r.soa_gflops / r.scalar_gflops),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        &format!(
            "hot path · explicit SIMD kernel (level={}, scalar oracle vs mono vs SIMD SoA)",
            report.kernel_simd.level
        ),
        &[
            "k",
            "scalar GFLOP/s",
            "mono GFLOP/s",
            "SIMD GFLOP/s",
            "SIMD/mono",
        ],
        &report
            .kernel_simd
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    format!("{:.3}", r.scalar_gflops),
                    format!("{:.3}", r.mono_gflops),
                    format!("{:.3}", r.simd_gflops),
                    format!("{:.2}x", r.simd_gflops / r.mono_gflops),
                ]
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        "hot path · block acquire+release (exhaustive scan vs FreeBlockPool)",
        &["grid", "scan ns/op", "pool ns/op", "scan/pool"],
        &report
            .scheduler
            .iter()
            .map(|r| {
                vec![
                    format!("{}x{}", r.rows, r.cols),
                    format!("{:.0}", r.scan_ns),
                    format!("{:.0}", r.pool_ns),
                    format!("{:.1}x", r.scan_ns / r.pool_ns),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let ing = &report.ingest;
    print_table(
        "hot path · ingest pipeline (Mentries/s; grid build in ms)",
        &[
            "nnz",
            "threads",
            "parse",
            "shuf 1t",
            "shuf Nt",
            "grid 1t ms",
            "grid Nt ms",
            "csr 1t",
            "csr Nt",
        ],
        &[vec![
            ing.nnz.to_string(),
            ing.threads.to_string(),
            format!("{:.2}", ing.parse_mps),
            format!("{:.2}", ing.shuffle_serial_mps),
            format!("{:.2}", ing.shuffle_par_mps),
            format!("{:.2}", ing.grid_serial_ms),
            format!("{:.2}", ing.grid_par_ms),
            format!("{:.2}", ing.csr_serial_mps),
            format!("{:.2}", ing.csr_par_mps),
        ]],
    );

    let ev = &report.eval;
    print_table(
        "hot path · eval reduction (RMSE, Mentries/s)",
        &["nnz", "threads", "serial", "pooled"],
        &[vec![
            ev.nnz.to_string(),
            ev.threads.to_string(),
            format!("{:.2}", ev.rmse_serial_mps),
            format!("{:.2}", ev.rmse_par_mps),
        ]],
    );

    let sv = &report.serving;
    print_table(
        "hot path · serving (batched top-k queries/s)",
        &[
            "users", "items", "k", "queries", "top-k", "threads", "serial", "pooled", "cached",
        ],
        &[vec![
            sv.users.to_string(),
            sv.items.to_string(),
            sv.k.to_string(),
            sv.queries.to_string(),
            sv.count.to_string(),
            sv.threads.to_string(),
            format!("{:.0}", sv.serial_qps),
            format!("{:.0}", sv.par_qps),
            format!("{:.0}", sv.cached_qps),
        ]],
    );

    let sl = &report.serving_load;
    print_table(
        &format!(
            "hot path · batched tile sweep under Zipf load (users={}, items={}, k={}, s={})",
            sl.users, sl.items, sl.k, sl.zipf_s
        ),
        &[
            "batch",
            "batched q/s",
            "offered q/s",
            "p50 µs",
            "p99 µs",
            "mean batch",
            "unique frac",
        ],
        &sl.points
            .iter()
            .map(|p| {
                vec![
                    p.batch.to_string(),
                    format!("{:.0}", p.batched_qps),
                    format!("{:.0}", p.offered_qps),
                    format!("{:.0}", p.p50_us),
                    format!("{:.0}", p.p99_us),
                    format!("{:.1}", p.mean_batch),
                    format!("{:.3}", p.unique_frac),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let sq = &report.serving_quantized;
    print_table(
        &format!(
            "hot path · quantized batched sweep (users={}, items={}, k={}, queries={})",
            sq.users, sq.items, sq.k, sq.queries
        ),
        &["precision", "sweep q/s", "factor MB", "recall@10"],
        &sq.rows
            .iter()
            .map(|r| {
                vec![
                    r.precision.clone(),
                    format!("{:.0}", r.sweep_qps),
                    format!("{:.2}", r.factor_bytes as f64 / 1e6),
                    format!("{:.4}", r.recall10),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let lc = &report.lifecycle;
    print_table(
        &format!(
            "hot path · crash-safe online lifecycle (users={}, items={}, k={}, {}/epoch)",
            lc.users, lc.items, lc.k, lc.per_epoch
        ),
        &[
            "epochs",
            "deltas",
            "snaps",
            "disk MB",
            "delta MB/s",
            "snap MB/s",
            "recover ms",
            "recover MB/s",
            "swap p50 µs",
            "swap p99 µs",
            "lag p99",
        ],
        &[vec![
            lc.epochs.to_string(),
            lc.deltas.to_string(),
            lc.snapshots.to_string(),
            format!("{:.1}", lc.bytes as f64 / 1e6),
            format!("{:.0}", lc.delta_write_mbs),
            format!("{:.0}", lc.snapshot_write_mbs),
            format!("{:.2}", lc.recover_ms),
            format!("{:.0}", lc.recover_mbs),
            format!("{:.2}", lc.swap_p50_us),
            format!("{:.2}", lc.swap_p99_us),
            lc.lag_p99.to_string(),
        ]],
    );

    print_table(
        "hot path · heterogeneous trainer (real threads, StarScheduler)",
        &[
            "mode",
            "cpu workers",
            "gpus",
            "nnz",
            "iters",
            "ratings/s",
            "gpu share",
            "final RMSE",
        ],
        &report
            .hetero
            .iter()
            .map(|h| {
                vec![
                    h.label.clone(),
                    h.cpu_workers.to_string(),
                    h.gpus.to_string(),
                    h.nnz.to_string(),
                    h.iterations.to_string(),
                    format!("{:.3}M", h.ratings_per_s / 1e6),
                    format!("{:.0}%", h.gpu_share * 100.0),
                    format!("{:.4}", h.rmse),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let oc = &report.out_of_core;
    print_table(
        &format!(
            "hot path · out-of-core training (spill arena + LRU cache, nnz={}, threads={}, in-RAM {:.3}M ratings/s)",
            oc.nnz,
            oc.threads,
            oc.in_ram_ratings_per_s / 1e6
        ),
        &[
            "budget %",
            "budget MB",
            "ratings/s",
            "vs in-RAM",
            "hit rate",
            "IO overlap",
        ],
        &oc.rows
            .iter()
            .map(|r| {
                vec![
                    r.budget_pct.to_string(),
                    format!("{:.2}", r.budget_bytes as f64 / 1e6),
                    format!("{:.3}M", r.ratings_per_s / 1e6),
                    format!("{:.0}%", r.ratings_per_s / oc.in_ram_ratings_per_s * 100.0),
                    format!("{:.3}", r.hit_rate),
                    format!("{:.3}", r.io_overlap),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let e2e = &report.fpsgd;
    print_table(
        "hot path · end-to-end FPSGD (real threads)",
        &["threads", "k", "nnz", "iters", "ratings/s", "final RMSE"],
        &[vec![
            e2e.threads.to_string(),
            e2e.k.to_string(),
            e2e.nnz.to_string(),
            e2e.iterations.to_string(),
            format!("{:.3}M", e2e.ratings_per_s / 1e6),
            format!("{:.4}", e2e.rmse),
        ]],
    );

    let path = "BENCH_hotpath.json";
    std::fs::write(path, hotpath::to_json(&report))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
