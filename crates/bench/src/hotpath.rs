//! Measured baselines for the hot-path layers every trainer funnels
//! through — the SGD kernel, the block scheduler, the ingest pipeline
//! (parse → shuffle → CSR/grid build), and the evaluation reductions —
//! plus the serving layer a trained model is deployed behind
//! (`mf-serve` per-query top-k and the batched tile sweep under Zipf
//! load), the crash-safe online lifecycle (`mf-serve::live` delta
//! publish, recovery, and versioned swap), and the real-thread
//! heterogeneous trainer (`hsgd-core::runtime` driving `StarScheduler`
//! on OS threads).
//!
//! Shared by two binaries:
//!
//! * `hotpath_baseline` — full run, prints the tables and writes
//!   `BENCH_hotpath.json` (the committed perf-trajectory point).
//! * `bench_gate` — quick run compared against the committed JSON; fails
//!   CI when kernel GFLOP/s or end-to-end ratings/s regress by more than
//!   the tolerance.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use mf_par::ThreadPool;
use mf_sgd::fpsgd::{self, FpsgdConfig};
use mf_sgd::{eval, kernel, HyperParams, LearningRate, Model};
use mf_sparse::{
    io, BlockId, BlockOrder, FreeBlockPool, GridPartition, GridSpec, Rating, SoaRatings,
    SparseMatrix,
};

use crate::BenchArgs;
use mf_data::generator::{generate, GeneratorConfig};

/// FLOPs of one SGD update at dimension `k`: 2k (dot) + 8k (fused
/// p/q update) + a handful of scalar ops.
pub fn flops_per_update(k: usize) -> f64 {
    (10 * k + 5) as f64
}

/// Kernel throughput at one latent dimension, per storage layout.
pub struct KernelRow {
    /// Latent dimension.
    pub k: usize,
    /// Scalar reference loop over AoS ratings.
    pub scalar_gflops: f64,
    /// Monomorphized kernel over AoS ratings (the PR 2 layout).
    pub mono_gflops: f64,
    /// Monomorphized kernel over the SoA block layout.
    pub soa_gflops: f64,
}

/// SIMD-dispatch kernel throughput at one latent dimension, measured
/// over the SoA block loop: the scalar reference, the portable
/// monomorphized kernel (the `scalar` dispatch level — directly
/// comparable to the committed `kernel` section's `mono`/`soa`
/// columns), and the best SIMD level the host detects.
pub struct SimdKernelRow {
    /// Latent dimension.
    pub k: usize,
    /// Scalar reference loop (no monomorphization, no SIMD).
    pub scalar_gflops: f64,
    /// Portable monomorphized kernel (`SimdLevel::Scalar`).
    pub mono_gflops: f64,
    /// Explicit SIMD kernel at the detected level.
    pub simd_gflops: f64,
}

/// `kernel_simd` section: the dispatch ladder side by side, one row per
/// monomorphized dimension.
pub struct SimdKernelBench {
    /// The detected dispatch level `simd_gflops` ran at.
    pub level: String,
    /// One row per `MONO_DIMS` entry.
    pub rows: Vec<SimdKernelRow>,
}

/// One precision point of the `serving_quantized` section.
pub struct QuantRow {
    /// Precision label (`f32` / `f16` / `int8`).
    pub precision: String,
    /// Batched tile-sweep throughput at this precision.
    pub sweep_qps: f64,
    /// Resident at-rest item-factor bytes (codes + scales).
    pub factor_bytes: u64,
    /// Mean recall@10 against the f32 store's exact answers.
    pub recall10: f64,
}

/// `serving_quantized` section: the batched tile sweep per at-rest
/// factor precision, with resident bytes and quality alongside.
pub struct ServingQuantBench {
    /// Users with stored factors.
    pub users: u32,
    /// Items in the catalog.
    pub items: u32,
    /// Latent dimension.
    pub k: usize,
    /// Queries per measured batch.
    pub queries: usize,
    /// One row per precision.
    pub rows: Vec<QuantRow>,
}

/// Scheduler acquire+release cost on one grid size.
pub struct SchedRow {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Exhaustive-scan scheduler, ns per acquire+release.
    pub scan_ns: f64,
    /// `FreeBlockPool` (scan fast path below the threshold, heap above),
    /// ns per acquire+release.
    pub pool_ns: f64,
}

/// End-to-end FPSGD throughput.
pub struct E2e {
    /// Worker threads.
    pub threads: usize,
    /// Latent dimension.
    pub k: usize,
    /// Training ratings.
    pub nnz: usize,
    /// Passes over the grid.
    pub iterations: u32,
    /// Rating updates per second.
    pub ratings_per_s: f64,
    /// Final test RMSE (sanity check).
    pub rmse: f64,
}

/// Ingest-pipeline throughput: the `O(nnz)` passes between raw bytes and
/// a schedulable partition. `*_mps` columns are millions of entries per
/// second; grid columns are wall-clock milliseconds.
pub struct IngestBench {
    /// Entries in the synthetic input.
    pub nnz: usize,
    /// Threads in the parallel pool (the serial columns use 1).
    pub threads: usize,
    /// Text parse (byte-slice parser).
    pub parse_mps: f64,
    /// Seeded shuffle, 1-thread pool.
    pub shuffle_serial_mps: f64,
    /// Seeded shuffle, full pool (same output bit-for-bit).
    pub shuffle_par_mps: f64,
    /// User-major grid build, 1-thread pool.
    pub grid_serial_ms: f64,
    /// User-major grid build, full pool.
    pub grid_par_ms: f64,
    /// CSR build, 1-thread pool.
    pub csr_serial_mps: f64,
    /// CSR build, full pool.
    pub csr_par_mps: f64,
}

/// Serving throughput: batched top-k queries per second against a
/// `mf-serve::FactorStore` (tiled item factors, norm-bound pruning).
pub struct ServingBench {
    /// Users with stored factors.
    pub users: u32,
    /// Items in the catalog.
    pub items: u32,
    /// Latent dimension.
    pub k: usize,
    /// Queries per batch.
    pub queries: usize,
    /// Top-k size per query.
    pub count: usize,
    /// Threads in the parallel pool (the serial column uses 1).
    pub threads: usize,
    /// Batched top-k, 1-thread pool.
    pub serial_qps: f64,
    /// Batched top-k, full pool (identical results).
    pub par_qps: f64,
    /// Warm LRU result cache (100% hits).
    pub cached_qps: f64,
}

/// One operating point of the batched-serving load bench: the tile sweep
/// at a fixed admission batch size.
pub struct LoadPoint {
    /// Admission cap (`BatchPolicy::max_batch`) at this point.
    pub batch: usize,
    /// Saturated sweep throughput: back-to-back batches of `batch`
    /// queries, no queueing.
    pub batched_qps: f64,
    /// Poisson arrival rate the latency columns were measured at (60% of
    /// saturation).
    pub offered_qps: f64,
    /// Median latency (queue wait + batch service), microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Mean dispatched batch size under that load.
    pub mean_batch: f64,
    /// Unique query groups per served query — the Zipf dedup win
    /// (`1.0` = no duplicates, smaller = more sweeps saved).
    pub unique_frac: f64,
}

/// Serving-load section: the batched tile sweep (`FactorStore::
/// sweep_batch_in`) under Zipf query traffic, across admission batch
/// sizes.
pub struct ServingLoadBench {
    /// Users with stored factors.
    pub users: u32,
    /// Items in the catalog.
    pub items: u32,
    /// Latent dimension.
    pub k: usize,
    /// Queries in the replayed mix.
    pub queries: usize,
    /// Top-k size per query.
    pub count: usize,
    /// Zipf exponent of the user popularity distribution.
    pub zipf_s: f64,
    /// Threads in the sweep pool.
    pub threads: usize,
    /// One row per admission batch size.
    pub points: Vec<LoadPoint>,
}

/// Real-thread heterogeneous training throughput: `StarScheduler` driven
/// by `hsgd-core::runtime` over one worker mix, per execution mode.
pub struct HeteroRow {
    /// Execution mode label (`"relaxed"` / `"exclusive"`).
    pub label: String,
    /// CPU worker threads.
    pub cpu_workers: usize,
    /// GPU worker threads (each wrapping one simulated device).
    pub gpus: usize,
    /// Training ratings.
    pub nnz: usize,
    /// Passes over the grid.
    pub iterations: u32,
    /// Rating updates per second (wall clock, whole run).
    pub ratings_per_s: f64,
    /// Fraction of updates executed by the GPU worker.
    pub gpu_share: f64,
    /// Final test RMSE (sanity check).
    pub rmse: f64,
}

/// One cache-budget point of the out-of-core section.
pub struct OutOfCoreRow {
    /// Cache budget as a percentage of the partition's wire bytes.
    pub budget_pct: u32,
    /// The resulting byte budget.
    pub budget_bytes: u64,
    /// Rating updates per second (wall clock, training only — the
    /// one-time arena write is outside the measured region).
    pub ratings_per_s: f64,
    /// Fraction of block accesses served from the cache.
    pub hit_rate: f64,
    /// Fraction of arena-read time hidden behind compute:
    /// `1 − (wall_spill − wall_in_ram) / io_busy`, clamped to [0, 1].
    /// 1.0 means the prefetcher hid every read; 0.0 means every read
    /// stalled the workers.
    pub io_overlap: f64,
}

/// Out-of-core section: spill-backed training (block arena, LRU cache,
/// prefetch thread) against the identical run fully in RAM, at cache
/// budgets of 100/50/25% of the partition's wire bytes. Training is
/// bit-identical across all four runs (`tests/spill_identity.rs`), so
/// the rows measure pure IO overhead.
pub struct OutOfCoreBench {
    /// Training ratings.
    pub nnz: usize,
    /// CPU worker threads.
    pub threads: usize,
    /// The fully resident baseline's rating updates per second.
    pub in_ram_ratings_per_s: f64,
    /// One row per budget, largest first.
    pub rows: Vec<OutOfCoreRow>,
}

/// Evaluation-reduction throughput (millions of test entries per second).
pub struct EvalBench {
    /// Entries in the test set.
    pub nnz: usize,
    /// Threads in the parallel pool.
    pub threads: usize,
    /// RMSE, 1-thread pool.
    pub rmse_serial_mps: f64,
    /// RMSE, full pool (bit-identical value).
    pub rmse_par_mps: f64,
}

/// Crash-safe online lifecycle section: the `mf-serve::live` loop's
/// storage hot path (delta encode + fsync + atomic rename), directory
/// recovery, and the versioned reader swap.
pub struct LifecycleBench {
    /// User rows in the bootstrapped model.
    pub users: u32,
    /// Item rows in the bootstrapped model.
    pub items: u32,
    /// Latent dimension.
    pub k: usize,
    /// Live epochs run after bootstrap.
    pub epochs: u32,
    /// Ratings ingested per epoch.
    pub per_epoch: usize,
    /// Epochs persisted as v2 deltas.
    pub deltas: u32,
    /// Epochs persisted as full re-basing snapshots (plus the base).
    pub snapshots: u32,
    /// Bytes on disk after the run — what recovery has to scan.
    pub bytes: u64,
    /// Delta publish throughput (serialize + fsync + rename), MB/s,
    /// best epoch.
    pub delta_write_mbs: f64,
    /// Snapshot publish throughput, MB/s, best epoch.
    pub snapshot_write_mbs: f64,
    /// Directory recovery wall clock, milliseconds, best of several.
    pub recover_ms: f64,
    /// Recovery scan throughput over `bytes`, MB/s.
    pub recover_mbs: f64,
    /// Median versioned-swap (pointer flip) latency, microseconds.
    pub swap_p50_us: f64,
    /// 99th-percentile swap latency, microseconds.
    pub swap_p99_us: f64,
    /// 99th-percentile epoch lag observed by a polling reader thread
    /// during the live run.
    pub lag_p99: u64,
}

/// One full measurement run.
pub struct HotpathReport {
    /// Whether this was a `--quick` smoke run.
    pub quick: bool,
    /// Kernel section.
    pub kernel: Vec<KernelRow>,
    /// SIMD dispatch-ladder kernel section.
    pub kernel_simd: SimdKernelBench,
    /// Scheduler section.
    pub scheduler: Vec<SchedRow>,
    /// Ingest section.
    pub ingest: IngestBench,
    /// Eval section.
    pub eval: EvalBench,
    /// Serving section.
    pub serving: ServingBench,
    /// Batched-serving load section.
    pub serving_load: ServingLoadBench,
    /// Quantized-store serving section.
    pub serving_quantized: ServingQuantBench,
    /// Crash-safe online lifecycle section.
    pub lifecycle: LifecycleBench,
    /// Real-thread heterogeneous trainer section.
    pub hetero: Vec<HeteroRow>,
    /// Out-of-core (spill-backed) training section.
    pub out_of_core: OutOfCoreBench,
    /// End-to-end section.
    pub fpsgd: E2e,
}

/// Times `f` (which consumes the prepared state from `setup`) over
/// `runs` repetitions and returns the best wall-clock seconds.
pub fn best_of<T>(runs: usize, mut setup: impl FnMut() -> T, mut f: impl FnMut(&mut T)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let mut state = setup();
        let t0 = Instant::now();
        f(&mut state);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Runs every section.
pub fn run(args: &BenchArgs) -> HotpathReport {
    let quick = args.quick;
    HotpathReport {
        quick,
        kernel: bench_kernels(quick, args.seed),
        kernel_simd: bench_kernel_simd(quick, args.seed),
        scheduler: bench_scheduler(quick),
        ingest: bench_ingest(quick, args.seed),
        eval: bench_eval(quick, args.seed),
        serving: bench_serving(quick, args.seed),
        serving_load: bench_serving_load(quick, args.seed),
        serving_quantized: bench_serving_quantized(quick, args.seed),
        lifecycle: bench_lifecycle(quick, args.seed),
        hetero: bench_hetero(quick, args.seed),
        out_of_core: bench_out_of_core(quick, args.seed),
        fpsgd: bench_fpsgd(quick, args),
    }
}

/// Kernel section: scalar vs monomorphized-AoS vs monomorphized-SoA, per
/// supported dimension.
pub fn bench_kernels(quick: bool, seed: u64) -> Vec<KernelRow> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (m, n) = (1024u32, 1024u32);
    let nnz = if quick { 20_000 } else { 200_000 };
    let reps = if quick { 3 } else { 10 };
    // Best-of-7 in full mode: the committed SoA-vs-AoS comparison should
    // reflect layout, not scheduler noise on a shared host.
    let runs = if quick { 2 } else { 7 };

    let mut rng = StdRng::seed_from_u64(seed);
    let block: Vec<Rating> = (0..nnz)
        .map(|_| {
            Rating::new(
                rng.random::<u32>() % m,
                rng.random::<u32>() % n,
                1.0 + 4.0 * rng.random::<f32>(),
            )
        })
        .collect();
    let soa = SoaRatings::from_entries(&block);

    let mut rows = Vec::new();
    for &k in &kernel::MONO_DIMS {
        let init = |seed_off: u64, len: usize, k: usize| -> Vec<f32> {
            let mut rng = StdRng::seed_from_u64(seed ^ seed_off);
            let s = 1.0 / (k as f32).sqrt();
            (0..len).map(|_| rng.random::<f32>() * s).collect()
        };
        let setup = || (init(1, m as usize * k, k), init(2, n as usize * k, k));
        let (gamma, lp, lq) = (0.005f32, 0.02f32, 0.02f32);
        // Interleave the three layouts within each round (and keep the
        // per-layout best across rounds): a host-load hiccup then hits
        // all three about equally instead of biasing whichever layout
        // owned that time window.
        let mut scalar_secs = f64::INFINITY;
        let mut mono_secs = f64::INFINITY;
        let mut soa_secs = f64::INFINITY;
        for _ in 0..runs {
            scalar_secs = scalar_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block_scalar(p, q, k, &block, gamma, lp, lq);
                }
                black_box(acc);
            }));
            mono_secs = mono_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block(p, q, k, &block, gamma, lp, lq);
                }
                black_box(acc);
            }));
            soa_secs = soa_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block_soa(p, q, k, soa.as_slices(), gamma, lp, lq);
                }
                black_box(acc);
            }));
        }
        let work = flops_per_update(k) * nnz as f64 * reps as f64;
        rows.push(KernelRow {
            k,
            scalar_gflops: work / scalar_secs / 1e9,
            mono_gflops: work / mono_secs / 1e9,
            soa_gflops: work / soa_secs / 1e9,
        });
    }
    rows
}

/// `kernel_simd` section: scalar reference vs portable monomorphized
/// kernel vs the detected SIMD level, all over the SoA block loop via
/// `sgd_block_soa_at` — one process measures the whole ladder, no
/// `MF_SIMD` re-exec. `mono_gflops` here is the pre-SIMD committed
/// baseline's kernel (pinned to `SimdLevel::Scalar`), so
/// `simd_gflops / mono_gflops` is exactly the speedup the acceptance
/// criteria gate on.
pub fn bench_kernel_simd(quick: bool, seed: u64) -> SimdKernelBench {
    use mf_sgd::simd::{self, SimdLevel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let (m, n) = (1024u32, 1024u32);
    let nnz = if quick { 20_000 } else { 200_000 };
    let reps = if quick { 3 } else { 10 };
    let runs = if quick { 2 } else { 7 };
    let level = simd::detected();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
    let block: Vec<Rating> = (0..nnz)
        .map(|_| {
            Rating::new(
                rng.random::<u32>() % m,
                rng.random::<u32>() % n,
                1.0 + 4.0 * rng.random::<f32>(),
            )
        })
        .collect();
    let soa = SoaRatings::from_entries(&block);

    let mut rows = Vec::new();
    for &k in &kernel::MONO_DIMS {
        let init = |seed_off: u64, len: usize, k: usize| -> Vec<f32> {
            let mut rng = StdRng::seed_from_u64(seed ^ seed_off);
            let s = 1.0 / (k as f32).sqrt();
            (0..len).map(|_| rng.random::<f32>() * s).collect()
        };
        let setup = || (init(1, m as usize * k, k), init(2, n as usize * k, k));
        let (gamma, lp, lq) = (0.005f32, 0.02f32, 0.02f32);
        // Interleaved best-of, like the kernel section: a host hiccup
        // hits all three variants about equally.
        let mut scalar_secs = f64::INFINITY;
        let mut mono_secs = f64::INFINITY;
        let mut simd_secs = f64::INFINITY;
        for _ in 0..runs {
            scalar_secs = scalar_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block_scalar(p, q, k, &block, gamma, lp, lq);
                }
                black_box(acc);
            }));
            mono_secs = mono_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block_soa_at(
                        SimdLevel::Scalar,
                        p,
                        q,
                        k,
                        soa.as_slices(),
                        gamma,
                        lp,
                        lq,
                    );
                }
                black_box(acc);
            }));
            simd_secs = simd_secs.min(best_of(1, setup, |(p, q)| {
                let mut acc = 0f64;
                for _ in 0..reps {
                    acc += kernel::sgd_block_soa_at(level, p, q, k, soa.as_slices(), gamma, lp, lq);
                }
                black_box(acc);
            }));
        }
        let work = flops_per_update(k) * nnz as f64 * reps as f64;
        rows.push(SimdKernelRow {
            k,
            scalar_gflops: work / scalar_secs / 1e9,
            mono_gflops: work / mono_secs / 1e9,
            simd_gflops: work / simd_secs / 1e9,
        });
    }
    SimdKernelBench {
        level: level.name().to_string(),
        rows,
    }
}

/// The pre-pool scheduler core: exhaustive least-count scan. Reproduced
/// here — with its own busy/count state, deliberately not built on
/// `FreeBlockPool` — so the baseline keeps measuring the *replaced*
/// implementation, not the pool wearing a costume.
struct ScanSched {
    rows: u32,
    cols: u32,
    row_busy: Vec<bool>,
    col_busy: Vec<bool>,
    counts: Vec<u32>,
}

impl ScanSched {
    fn new(rows: u32, cols: u32) -> ScanSched {
        ScanSched {
            rows,
            cols,
            row_busy: vec![false; rows as usize],
            col_busy: vec![false; cols as usize],
            counts: vec![0; (rows * cols) as usize],
        }
    }

    fn acquire(&mut self) -> Option<BlockId> {
        let mut best: Option<(u32, BlockId)> = None;
        for r in 0..self.rows {
            if self.row_busy[r as usize] {
                continue;
            }
            for c in 0..self.cols {
                if self.col_busy[c as usize] {
                    continue;
                }
                let count = self.counts[(r * self.cols + c) as usize];
                if best.is_none_or(|(b, _)| count < b) {
                    best = Some((count, BlockId::new(r, c)));
                }
            }
        }
        let (_, id) = best?;
        self.counts[(id.row * self.cols + id.col) as usize] += 1;
        self.row_busy[id.row as usize] = true;
        self.col_busy[id.col as usize] = true;
        Some(id)
    }

    fn release(&mut self, id: BlockId) {
        self.row_busy[id.row as usize] = false;
        self.col_busy[id.col as usize] = false;
    }
}

/// Steady-state worker traffic: keep `workers` blocks in flight, releasing
/// the oldest before each new acquire — the access pattern an FPSGD worker
/// pool generates. Returns ns per acquire+release pair.
pub fn bench_scheduler(quick: bool) -> Vec<SchedRow> {
    let pairs = if quick { 20_000u64 } else { 200_000 };
    let workers = 8usize;
    let mut out = Vec::new();
    for (rows, cols) in [(8u32, 8u32), (64, 64)] {
        let scan_secs = {
            let mut s = ScanSched::new(rows, cols);
            let mut held: Vec<BlockId> = Vec::new();
            // Fill the in-flight window outside the timed region.
            while held.len() < workers {
                match s.acquire() {
                    Some(id) => held.push(id),
                    None => break,
                }
            }
            let t0 = Instant::now();
            for i in 0..pairs {
                let slot = (i % held.len() as u64) as usize;
                s.release(held[slot]);
                held[slot] = s.acquire().expect("freed bands leave a block free");
            }
            let secs = t0.elapsed().as_secs_f64();
            black_box(&s.counts);
            secs
        };
        let pool_secs = {
            let mut pool = FreeBlockPool::new(rows, cols, None);
            let mut held: Vec<BlockId> = Vec::new();
            while held.len() < workers {
                match pool.acquire() {
                    Some((id, _)) => held.push(id),
                    None => break,
                }
            }
            let t0 = Instant::now();
            for i in 0..pairs {
                let slot = (i % held.len() as u64) as usize;
                pool.release(held[slot]);
                let (id, _) = pool.acquire().expect("freed bands leave a block free");
                held[slot] = id;
            }
            let secs = t0.elapsed().as_secs_f64();
            black_box(pool.counts());
            secs
        };
        out.push(SchedRow {
            rows,
            cols,
            scan_ns: scan_secs / pairs as f64 * 1e9,
            pool_ns: pool_secs / pairs as f64 * 1e9,
        });
    }
    out
}

/// Synthetic COO matrix for the ingest/eval sections.
fn synth_matrix(nnz: usize, m: u32, n: u32, seed: u64) -> SparseMatrix {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    SparseMatrix::new(
        m,
        n,
        (0..nnz)
            .map(|_| {
                Rating::new(
                    rng.random::<u32>() % m,
                    rng.random::<u32>() % n,
                    1.0 + 4.0 * rng.random::<f32>(),
                )
            })
            .collect(),
    )
    .expect("in bounds by construction")
}

/// Ingest section: parse, shuffle, grid build, CSR build.
pub fn bench_ingest(quick: bool, seed: u64) -> IngestBench {
    let nnz = if quick { 100_000 } else { 2_000_000 };
    let (m, n) = (50_000u32, 50_000u32);
    let runs = if quick { 2 } else { 3 };
    let data = synth_matrix(nnz, m, n, seed);
    let serial = ThreadPool::new(1);
    let par = ThreadPool::global();
    let mps = |secs: f64| nnz as f64 / secs / 1e6;

    // Text parse: serialize once, parse from memory.
    let mut text = Vec::new();
    io::write_text(&data, &mut text).expect("in-memory write");
    let parse_secs = best_of(
        runs,
        || (),
        |_| {
            let parsed = io::read_text(&text[..], Some((m, n))).expect("round trip");
            black_box(parsed.nnz());
        },
    );

    let shuffle_serial_secs = best_of(
        runs,
        || data.clone(),
        |d| mf_sparse::shuffle::par_shuffle_entries_in(d, seed ^ 1, &serial),
    );
    let shuffle_par_secs = best_of(
        runs,
        || data.clone(),
        |d| mf_sparse::shuffle::par_shuffle_entries_in(d, seed ^ 1, par),
    );

    let spec = GridSpec::uniform(m, n, 17, 16);
    let grid_serial_secs = best_of(
        runs,
        || (),
        |_| {
            let part = GridPartition::build_with_order_in(
                &data,
                spec.clone(),
                BlockOrder::UserMajor,
                &serial,
            );
            black_box(part.total_nnz());
        },
    );
    let grid_par_secs = best_of(
        runs,
        || (),
        |_| {
            let part =
                GridPartition::build_with_order_in(&data, spec.clone(), BlockOrder::UserMajor, par);
            black_box(part.total_nnz());
        },
    );

    let csr_serial_secs = best_of(
        runs,
        || (),
        |_| {
            black_box(mf_sparse::CsrView::build_in(&data, &serial).nnz());
        },
    );
    let csr_par_secs = best_of(
        runs,
        || (),
        |_| {
            black_box(mf_sparse::CsrView::build_in(&data, par).nnz());
        },
    );

    IngestBench {
        nnz,
        threads: par.threads(),
        parse_mps: mps(parse_secs),
        shuffle_serial_mps: mps(shuffle_serial_secs),
        shuffle_par_mps: mps(shuffle_par_secs),
        grid_serial_ms: grid_serial_secs * 1e3,
        grid_par_ms: grid_par_secs * 1e3,
        csr_serial_mps: mps(csr_serial_secs),
        csr_par_mps: mps(csr_par_secs),
    }
}

/// Eval section: the RMSE reduction, serial vs pooled.
pub fn bench_eval(quick: bool, seed: u64) -> EvalBench {
    let nnz = if quick { 200_000 } else { 2_000_000 };
    let (m, n) = (20_000u32, 20_000u32);
    let k = 32;
    let runs = if quick { 2 } else { 3 };
    let data = synth_matrix(nnz, m, n, seed ^ 0xe5a1);
    let model = Model::init(m, n, k, seed);
    let serial = ThreadPool::new(1);
    let par = ThreadPool::global();
    let serial_secs = best_of(
        runs,
        || (),
        |_| {
            black_box(eval::rmse_in(&model, &data, &serial));
        },
    );
    let par_secs = best_of(
        runs,
        || (),
        |_| {
            black_box(eval::rmse_in(&model, &data, par));
        },
    );
    EvalBench {
        nnz,
        threads: par.threads(),
        rmse_serial_mps: nnz as f64 / serial_secs / 1e6,
        rmse_par_mps: nnz as f64 / par_secs / 1e6,
    }
}

/// Serving section: batched top-k against the tiled factor store —
/// serial pool, full pool, and warm-cache variants over one query mix.
///
/// The quick store is smaller (cache-friendlier), so quick ≥ full on the
/// same silicon — the conservative direction for the gate, mirroring the
/// kernel section's quick-mode block.
pub fn bench_serving(quick: bool, seed: u64) -> ServingBench {
    use mf_serve::{FactorStore, Query};
    let (users, items) = if quick {
        (2_000u32, 8_000u32)
    } else {
        (10_000u32, 40_000u32)
    };
    let k = 32;
    let nqueries = if quick { 300 } else { 2_000 };
    let count = 10;
    let runs = if quick { 2 } else { 3 };
    let model = Model::init(users, items, k, seed ^ 0x5e7e);
    let store = FactorStore::new(model, 1);
    // A mildly skewed user mix with a short exclusion list each — the
    // shape of real recommendation traffic.
    let queries: Vec<Query> = (0..nqueries)
        .map(|i| {
            let u = ((i as u64 * 0x9e37_79b9) % users as u64) as u32;
            Query {
                user: mf_serve::QueryUser::Id(u),
                count,
                exclude: vec![u % items, (u * 7 + 3) % items],
            }
        })
        .collect();
    let serial = ThreadPool::new(1);
    let par = ThreadPool::global();
    let qps = |secs: f64| nqueries as f64 / secs;

    // Warm-cache store: fill outside the timed region, then re-serve the
    // identical batch — every query hits.
    let cached_store = {
        let model = Model::init(users, items, k, seed ^ 0x5e7e);
        FactorStore::new(model, 1).with_cache(users as usize)
    };
    let _ = cached_store.serve_batch_in(&queries, &serial);

    // Interleave the three variants within each round (keeping the
    // per-variant best across rounds), like the kernel section: a
    // host-load hiccup then hits all three about equally instead of
    // biasing whichever variant owned that time window.
    let mut serial_secs = f64::INFINITY;
    let mut par_secs = f64::INFINITY;
    let mut cached_secs = f64::INFINITY;
    for _ in 0..runs {
        serial_secs = serial_secs.min(best_of(
            1,
            || (),
            |_| {
                black_box(store.serve_batch_in(&queries, &serial));
            },
        ));
        par_secs = par_secs.min(best_of(
            1,
            || (),
            |_| {
                black_box(store.serve_batch_in(&queries, par));
            },
        ));
        cached_secs = cached_secs.min(best_of(
            1,
            || (),
            |_| {
                black_box(cached_store.serve_batch_in(&queries, &serial));
            },
        ));
    }

    ServingBench {
        users,
        items,
        k,
        queries: nqueries,
        count,
        threads: par.threads(),
        serial_qps: qps(serial_secs),
        par_qps: qps(par_secs),
        cached_qps: qps(cached_secs),
    }
}

/// The precisions the quantized-serving section (and the gate) measure.
pub const QUANT_PRECISIONS: [&str; 3] = ["f32", "f16", "int8"];

/// `serving_quantized` section: the batched tile sweep per at-rest
/// factor precision — throughput, resident factor bytes, and mean
/// recall@10 against the f32 store's exact answers, side by side.
/// The catalog gets a mild popularity decay (head-heavy item norms,
/// like a trained model) so the recall column measures quantization
/// against realistic top-k gaps, not iid noise.
pub fn bench_serving_quantized(quick: bool, seed: u64) -> ServingQuantBench {
    use mf_serve::{FactorStore, Precision, Query};
    let (users, items) = if quick {
        (2_000u32, 8_000u32)
    } else {
        (10_000u32, 40_000u32)
    };
    let k = 32;
    let nqueries = if quick { 512 } else { 2_048 };
    let count = 10;
    let runs = if quick { 2 } else { 5 };
    let mut model = Model::init(users, items, k, seed ^ 0x9a7);
    for v in 0..items {
        let pop = 1.0 + 2.5 * (-(v as f32) / (items as f32 / 5.0)).exp();
        for x in model.q_row_mut(v) {
            *x *= pop;
        }
    }
    let queries: Vec<Query> = (0..nqueries)
        .map(|i| Query::top_k(((i as u64 * 0x9e37_79b9) % users as u64) as u32, count))
        .collect();
    let pool = ThreadPool::new(1);

    let stores: Vec<(Precision, FactorStore)> = [Precision::F32, Precision::F16, Precision::Int8]
        .into_iter()
        .map(|p| (p, FactorStore::with_precision(model.clone(), 1, p)))
        .collect();
    let reference = stores[0].1.sweep_batch_in(&queries, &pool);

    let mut rows = Vec::new();
    for (precision, store) in &stores {
        let mut secs = f64::INFINITY;
        for _ in 0..runs {
            secs = secs.min(best_of(
                1,
                || (),
                |_| {
                    black_box(store.sweep_batch_in(&queries, &pool));
                },
            ));
        }
        let answers = store.sweep_batch_in(&queries, &pool);
        let recall10 = answers
            .iter()
            .zip(&reference)
            .map(|(a, b)| {
                if b.items.is_empty() {
                    return 1.0;
                }
                let hit = a
                    .items
                    .iter()
                    .filter(|(v, _)| b.items.iter().any(|(w, _)| w == v))
                    .count();
                hit as f64 / b.items.len() as f64
            })
            .sum::<f64>()
            / answers.len() as f64;
        rows.push(QuantRow {
            precision: precision.name().to_string(),
            sweep_qps: nqueries as f64 / secs,
            factor_bytes: store.resident_factor_bytes() as u64,
            recall10,
        });
    }
    ServingQuantBench {
        users,
        items,
        k,
        queries: nqueries,
        rows,
    }
}

/// The admission batch sizes the load bench (and the gate) measure at.
pub const LOAD_BATCH_POINTS: [usize; 3] = [1024, 4096, 8192];

/// Serving-load section: the batched tile sweep under Zipf query
/// traffic, one row per admission batch size.
///
/// Two measurements per point:
///
/// * **saturated throughput** — back-to-back `sweep_batch_in` calls at
///   the point's batch size over the whole mix (best-of, like every
///   other section);
/// * **latency under load** — the same mix replayed through
///   [`mf_serve::sched::run_load`] as Poisson arrivals at 60% of that
///   saturated rate, admission cut at the batch size or at twice its
///   expected fill time, p50/p99 from an [`hsgd_core::stats::Histogram`].
///
/// The quick store is smaller (cache-friendlier, more dedup per batch),
/// so quick ≥ full on the same silicon — the conservative direction for
/// the gate, mirroring the other sections.
pub fn bench_serving_load(quick: bool, seed: u64) -> ServingLoadBench {
    use hsgd_core::stats::Histogram;
    use mf_data::{poisson_arrivals, query_mix, QueryMixConfig};
    use mf_serve::sched::run_load;
    use mf_serve::{BatchPolicy, Batcher, FactorStore, Query, QueryUser};

    let (users, items) = if quick {
        (2_000u32, 8_000u32)
    } else {
        (10_000u32, 40_000u32)
    };
    let k = 32;
    let count = 10;
    let nqueries = 8_192;
    let runs = if quick { 3 } else { 5 };
    let zipf_s = 1.05;

    let model = Model::init(users, items, k, seed ^ 0x5e7e);
    let store = FactorStore::new(model, 1);
    let mix = QueryMixConfig {
        users,
        items,
        user_s: zipf_s,
        count,
        max_history: 32,
        seed: seed ^ 0x717e,
    };
    let queries: Vec<Query> = query_mix(&mix, nqueries)
        .into_iter()
        .map(|s| Query {
            user: QueryUser::Id(s.user),
            count: s.count,
            exclude: s.exclude,
        })
        .collect();
    let pool = ThreadPool::global();

    let mut points = Vec::new();
    for batch in LOAD_BATCH_POINTS {
        let secs = best_of(
            runs,
            || (),
            |_| {
                for chunk in queries.chunks(batch) {
                    black_box(store.sweep_batch_in(chunk, pool));
                }
            },
        );
        let batched_qps = nqueries as f64 / secs;

        let offered_qps = batched_qps * 0.6;
        let arrivals: Vec<(f64, Query)> =
            poisson_arrivals(offered_qps, nqueries, seed ^ batch as u64)
                .into_iter()
                .zip(queries.iter().cloned())
                .collect();
        let max_delay = 2.0 * batch as f64 / offered_qps;
        let mut batcher = Batcher::new(BatchPolicy::fixed(batch, max_delay));
        let report = run_load(&store, &arrivals, &mut batcher, pool);
        let mut hist = Histogram::latency_secs();
        for &l in &report.latencies {
            hist.record(l);
        }
        points.push(LoadPoint {
            batch,
            batched_qps,
            offered_qps,
            p50_us: hist.p50() * 1e6,
            p99_us: hist.p99() * 1e6,
            mean_batch: report.served as f64 / report.batch_sizes.len().max(1) as f64,
            unique_frac: report.unique as f64 / report.served.max(1) as f64,
        });
    }
    ServingLoadBench {
        users,
        items,
        k,
        queries: nqueries,
        count,
        zipf_s,
        threads: pool.threads(),
        points,
    }
}

/// Real-thread heterogeneous section on the auto-sized worker count.
pub fn bench_hetero(quick: bool, seed: u64) -> Vec<HeteroRow> {
    let workers = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
    bench_hetero_with(quick, seed, workers)
}

/// Real-thread heterogeneous section with a pinned CPU worker count —
/// the gate uses this to mirror the committed run's worker mix. One
/// `star_setup` per mode (the same offline phase the virtual experiments
/// run), then `run_training_real` in relaxed and exclusive modes.
///
/// The quick dataset is smaller (cache-friendlier), so quick ≥ full on
/// the same silicon — the conservative direction for the gate, mirroring
/// the kernel and end-to-end sections.
pub fn bench_hetero_with(quick: bool, seed: u64, cpu_workers: usize) -> Vec<HeteroRow> {
    use hsgd_core::experiments::{preprocess_pair, star_setup};
    use hsgd_core::runtime::{run_training_real, ExecMode};
    use hsgd_core::{CostModelKind, CpuSpec, DevicePool, HeteroConfig};

    let (users, items, ntrain) = if quick {
        (1_000u32, 500u32, 60_000usize)
    } else {
        (4_000, 2_000, 400_000)
    };
    let iterations = if quick { 4 } else { 8 };
    let runs = if quick { 1 } else { 3 };
    const DEV_SCALE: f64 = 100.0;

    let ds = generate(&GeneratorConfig {
        num_users: users,
        num_items: items,
        num_train: ntrain,
        num_test: ntrain / 10,
        ..GeneratorConfig::tiny("hetero", seed)
    });
    let cfg = HeteroConfig {
        hyper: HyperParams {
            k: 16,
            lambda_p: 0.05,
            lambda_q: 0.05,
            gamma: 0.01,
            schedule: LearningRate::Fixed,
        },
        nc: cpu_workers,
        ng: 1,
        gpu: gpu_sim::GpuSpec::quadro_p4000().scaled_down(DEV_SCALE),
        cpu: CpuSpec::default().scaled_down(DEV_SCALE),
        iterations,
        seed,
        dynamic_scheduling: true,
        cost_model: CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    let (train, test) = preprocess_pair(&ds.train, &ds.test, cfg.seed);

    let mut rows = Vec::new();
    for (label, mode) in [
        ("relaxed", ExecMode::Relaxed),
        ("exclusive", ExecMode::Exclusive),
    ] {
        let mut best_rate = 0.0f64;
        let mut gpu_share = 0.0;
        let mut rmse = f64::NAN;
        for _ in 0..runs {
            let setup = star_setup(&train, &cfg, CostModelKind::Tailored, true);
            let ng = setup.gpus.len();
            let out = run_training_real(
                &train,
                &test,
                setup.scheduler,
                DevicePool {
                    cpu_workers: cfg.nc,
                    gpus: setup.gpus,
                    gpu_start: vec![mf_des::SimTime::ZERO; ng],
                },
                &cfg,
                mode,
                Some(setup.alpha),
                label,
            );
            let total = (out.report.cpu_points + out.report.gpu_points) as f64;
            let rate = total / out.report.virtual_secs;
            if rate > best_rate {
                best_rate = rate;
                gpu_share = out.report.gpu_share();
                rmse = out.report.final_test_rmse;
            }
        }
        rows.push(HeteroRow {
            label: label.to_string(),
            cpu_workers,
            gpus: 1,
            nnz: train.nnz(),
            iterations,
            ratings_per_s: best_rate,
            gpu_share,
            rmse,
        });
    }
    rows
}

/// The cache budgets the out-of-core section (and the gate) measure at,
/// as percentages of the partition's wire bytes.
pub const OOC_BUDGET_PCTS: [u32; 3] = [100, 50, 25];

/// Out-of-core section on the auto-sized worker count.
pub fn bench_out_of_core(quick: bool, seed: u64) -> OutOfCoreBench {
    let workers = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
    bench_out_of_core_with(quick, seed, workers)
}

/// Out-of-core section with a pinned CPU worker count — the gate uses
/// this to mirror the committed run's worker mix.
///
/// One in-RAM `run_training_real` baseline, then `train_out_of_core_real`
/// (same scheduler, same exclusive mode, bit-identical factors) at each
/// budget in [`OOC_BUDGET_PCTS`]. Per row:
///
/// * **ratings/s** — update count over the training wall clock (the
///   one-time arena write happens before the measured region);
/// * **hit rate** — from the block cache's end-of-run counters;
/// * **IO overlap** — how much of the cache's cumulative arena-read
///   time (`SpillCounters::load_secs`) was hidden behind compute:
///   `1 − (wall_spill − wall_in_ram) / io_busy`, clamped to [0, 1].
///
/// The quick dataset is smaller (cache-friendlier, shorter reads), so
/// quick ≥ full on the same disk — the conservative direction for the
/// gate, mirroring the other sections.
pub fn bench_out_of_core_with(quick: bool, seed: u64, cpu_workers: usize) -> OutOfCoreBench {
    use hsgd_core::layout::uniform_layout;
    use hsgd_core::runtime::{run_training_real, ExecMode};
    use hsgd_core::scheduler::UniformScheduler;
    use hsgd_core::{train_out_of_core_real, CostModelKind, CpuSpec, DevicePool, HeteroConfig};
    use mf_sparse::RealFs;
    use std::sync::Arc;

    let ds = generate(&if quick {
        GeneratorConfig {
            num_users: 1_000,
            num_items: 600,
            num_train: 60_000,
            num_test: 6_000,
            ..GeneratorConfig::spill_scale("ooc", seed)
        }
    } else {
        GeneratorConfig::spill_scale("ooc", seed)
    });
    let iterations = if quick { 3 } else { 6 };
    let runs = if quick { 2 } else { 3 };
    let cfg = HeteroConfig {
        hyper: HyperParams {
            k: 16,
            lambda_p: 0.05,
            lambda_q: 0.05,
            gamma: 0.01,
            schedule: LearningRate::Fixed,
        },
        nc: cpu_workers,
        ng: 0,
        gpu: gpu_sim::GpuSpec::quadro_p4000().scaled_down(100.0),
        cpu: CpuSpec::default().scaled_down(100.0),
        iterations,
        seed,
        dynamic_scheduling: true,
        cost_model: CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    let (train, test) = (&ds.train, &ds.test);
    let spec = uniform_layout(train, 8, 6);
    let pool = || DevicePool {
        cpu_workers: cfg.nc,
        gpus: vec![],
        gpu_start: vec![],
    };
    let updates = train.nnz() as f64 * iterations as f64;

    let mut in_ram_rate = 0.0f64;
    let mut in_ram_wall = f64::INFINITY;
    for _ in 0..runs {
        let out = run_training_real(
            train,
            test,
            UniformScheduler::new(spec.clone(), cfg.iterations, true),
            pool(),
            &cfg,
            ExecMode::Exclusive,
            None,
            "ooc/in-ram",
        );
        let wall = out.report.virtual_secs;
        let rate = updates / wall;
        if rate > in_ram_rate {
            in_ram_rate = rate;
            in_ram_wall = wall;
        }
    }

    let total = train.nnz() * Rating::WIRE_BYTES;
    let mut rows = Vec::new();
    for pct in OOC_BUDGET_PCTS {
        let budget = (total * pct as usize / 100).max(1);
        let mut best: Option<OutOfCoreRow> = None;
        for r in 0..runs {
            let dir = std::env::temp_dir().join(format!(
                "mf_bench_ooc_{}_{seed}_{pct}_{r}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
            let out = train_out_of_core_real(
                train,
                test,
                UniformScheduler::new(spec.clone(), cfg.iterations, true),
                pool(),
                &cfg,
                ExecMode::Exclusive,
                Arc::new(RealFs),
                &dir,
                budget,
                None,
                "ooc/spill",
            )
            .unwrap_or_else(|e| panic!("out-of-core bench run at {pct}%: {e}"));
            let _ = std::fs::remove_dir_all(&dir);
            let wall = out.report.virtual_secs;
            let spill = out.report.spill.expect("spilled run reports counters");
            let io_busy = spill.load_secs;
            let io_overlap = if io_busy > 0.0 {
                (1.0 - (wall - in_ram_wall).max(0.0) / io_busy).clamp(0.0, 1.0)
            } else {
                1.0
            };
            let rate = updates / wall;
            if best.as_ref().is_none_or(|b| rate > b.ratings_per_s) {
                best = Some(OutOfCoreRow {
                    budget_pct: pct,
                    budget_bytes: budget as u64,
                    ratings_per_s: rate,
                    hit_rate: spill.hit_rate(),
                    io_overlap,
                });
            }
        }
        rows.push(best.expect("at least one run per budget"));
    }
    OutOfCoreBench {
        nnz: train.nnz(),
        threads: cpu_workers,
        in_ram_ratings_per_s: in_ram_rate,
        rows,
    }
}

/// End-to-end FPSGD on the auto-sized thread count.
pub fn bench_fpsgd(quick: bool, args: &BenchArgs) -> E2e {
    // Auto-size to the host unless the user pinned --nc explicitly.
    let threads = if args.nc_from_cli {
        args.nc
    } else {
        std::thread::available_parallelism().map_or(4, |p| p.get().min(8))
    };
    let k = if quick { 16 } else { 32 };
    bench_fpsgd_with(quick, args.seed, threads, k)
}

/// End-to-end FPSGD with pinned thread count and dimension — the gate
/// uses this to mirror the committed run's parameters.
pub fn bench_fpsgd_with(quick: bool, seed: u64, threads: usize, k: usize) -> E2e {
    let cfg = GeneratorConfig {
        num_users: if quick { 500 } else { 2000 },
        num_items: if quick { 500 } else { 2000 },
        num_train: if quick { 30_000 } else { 400_000 },
        num_test: if quick { 3_000 } else { 40_000 },
        ..GeneratorConfig::tiny("hotpath", seed)
    };
    let data = generate(&cfg);
    let iterations = if quick { 5 } else { 10 };
    let fcfg = FpsgdConfig {
        train: mf_sgd::sequential::TrainConfig {
            hyper: HyperParams {
                k,
                lambda_p: 0.05,
                lambda_q: 0.05,
                gamma: 0.01,
                schedule: LearningRate::Fixed,
            },
            iterations,
            seed,
            reshuffle: true,
        },
        threads,
        grid: None,
    };
    // Best-of like the other sections: train is deterministic in the
    // seed, so repeated runs measure the same work.
    let runs = if quick { 1 } else { 3 };
    let mut secs = f64::INFINITY;
    let mut model = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let m = fpsgd::train(&data.train, &fcfg);
        secs = secs.min(t0.elapsed().as_secs_f64());
        model = Some(m);
    }
    let model = model.expect("at least one run");
    let updates = data.train.nnz() as f64 * iterations as f64;
    E2e {
        threads,
        k,
        nnz: data.train.nnz(),
        iterations,
        ratings_per_s: updates / secs,
        rmse: eval::rmse(&model, &data.test),
    }
}

/// Lifecycle section: the `mf-serve::live` crash-safe loop against a
/// real filesystem (a scratch directory under the OS temp dir).
///
/// Four measurements:
///
/// * **delta / snapshot publish MB/s** — wall clock around each
///   [`mf_serve::LiveTrainer::step`], best epoch per record kind. The
///   online SGD pass inside `step` is microseconds against the
///   serialize + fsync + rename it also performs, so the step is the
///   storage hot path to within noise.
/// * **recovery MB/s** — [`mf_serve::delta::recover`] over the
///   directory the loop just wrote (base snapshot + delta chain),
///   best-of like every other section; sanity-checked to land exactly
///   on the last acked epoch.
/// * **swap latency p50/p99** — the versioned pointer flip on a
///   standalone [`mf_serve::LiveStore`], with each incoming
///   `FactorStore` built outside the timed region.
/// * **lag p99** — the staleness a reader thread polling
///   [`mf_serve::LiveStore::current`] throughout the live run observes.
///
/// Quick mode keeps the full run's geometry AND epoch count (identical
/// record sizes and chain length — publish MB/s on an fsync-bound path
/// grows with record size, and recovery MB/s amortizes its fixed
/// directory-scan cost over the chain, so shrinking either would bias
/// the gate toward false failures) and only cuts the swap-sample count.
pub fn bench_lifecycle(quick: bool, seed: u64) -> LifecycleBench {
    use mf_serve::live::RecordKind;
    use mf_serve::{
        delta, CheckpointMeta, FactorStore, LiveConfig, LiveStore, LiveTrainer, RealFs,
    };
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (users, items) = (3_000u32, 4_500u32);
    let k = 32usize;
    let per_epoch = 1_500usize;
    let epochs: u32 = 20;
    let snapshot_every = 4u64;
    let nswaps = if quick { 200 } else { 1_000 };

    let dir =
        std::env::temp_dir().join(format!("mf_bench_lifecycle_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));

    let model = Model::init(users, items, k, seed ^ 0x11fe);
    let cfg = LiveConfig {
        snapshot_every,
        ..Default::default()
    };
    let mut trainer = LiveTrainer::bootstrap(
        Arc::new(RealFs),
        dir.clone(),
        model,
        CheckpointMeta { seed, epoch: 0 },
        cfg,
    )
    .unwrap_or_else(|e| panic!("lifecycle bootstrap in {}: {e}", dir.display()));

    // A reader polls the live handle for the whole run; every
    // `current()` records the observed staleness into the store's lag
    // instrument, so `lag_p99` is measured under real contention with
    // the publishing writer.
    let live = trainer.live();
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let live = live.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                black_box(live.current().epoch());
                std::thread::yield_now();
            }
        })
    };

    let mut rng = StdRng::seed_from_u64(seed ^ 0x11fe);
    let (mut deltas, mut snapshots) = (0u32, 0u32);
    let (mut best_delta_mbs, mut best_snap_mbs) = (0f64, 0f64);
    for _ in 0..epochs {
        for _ in 0..per_epoch {
            trainer.ingest(
                rng.random::<u32>() % users,
                rng.random::<u32>() % items,
                1.0 + 4.0 * rng.random::<f32>(),
            );
        }
        let t0 = Instant::now();
        let rep = trainer.step();
        let secs = t0.elapsed().as_secs_f64();
        assert!(
            rep.acked,
            "lifecycle epoch {} not acked: {:?}",
            rep.epoch, rep.ckpt_error
        );
        let mbs = rep.bytes as f64 / 1e6 / secs;
        match rep.kind {
            RecordKind::Delta => {
                deltas += 1;
                best_delta_mbs = best_delta_mbs.max(mbs);
            }
            RecordKind::Snapshot => {
                snapshots += 1;
                best_snap_mbs = best_snap_mbs.max(mbs);
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    reader.join().expect("lifecycle reader thread");
    let lag_p99 = live.lag_stats().p99();

    // Recovery replays everything the loop left on disk: the base
    // snapshot, the longest delta chain, and the classification scan
    // of every other record. Measured *before* the swap probe so the
    // probe's mode-dependent allocator churn (nswaps model clones)
    // cannot skew the gated throughput.
    let bytes: u64 = std::fs::read_dir(&dir)
        .expect("read lifecycle dir")
        .filter_map(|e| e.ok())
        .filter_map(|e| e.metadata().ok())
        .map(|m| m.len())
        .sum();
    // Recovery is a ~10ms operation; a handful of samples leaves the
    // best-of max with run-to-run spread wider than the gate tolerance.
    // Twenty samples cost ~200ms and pin the max down in both modes.
    // What best-of cannot remove is *process-level* state — recovery
    // allocates megabyte-scale buffers, and whether those come from a
    // warm heap or fresh kernel pages depends on the process's whole
    // allocation history, which differs between a full baseline run
    // and a quick gate run. That is why the gate compares this metric
    // under the wider storage tolerance.
    let runs = 20;
    let recover_secs = best_of(
        runs,
        || (),
        |_| {
            black_box(delta::recover(&dir).expect("recover lifecycle dir"));
        },
    );
    let recovered = delta::recover(&dir).expect("recover lifecycle dir");
    assert_eq!(
        recovered.epoch(),
        trainer.acked_epoch(),
        "recovery must land on the last acked epoch"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // Swap latency: each incoming store is built untimed, then the
    // timed region is exactly what readers race against — the epoch
    // bump plus the versioned pointer flip.
    let probe = LiveStore::new(FactorStore::new(trainer.model().clone(), 0));
    let mut swaps_us = Vec::with_capacity(nswaps);
    for e in 1..=nswaps as u64 {
        let store = FactorStore::new(trainer.model().clone(), e);
        probe.mark_trained(e);
        let t0 = Instant::now();
        probe.publish(store);
        swaps_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    swaps_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let rank = |q: f64| swaps_us[((q * nswaps as f64).ceil() as usize).clamp(1, nswaps) - 1];
    let (swap_p50_us, swap_p99_us) = (rank(0.50), rank(0.99));

    LifecycleBench {
        users,
        items,
        k,
        epochs,
        per_epoch,
        deltas,
        snapshots,
        bytes,
        delta_write_mbs: best_delta_mbs,
        snapshot_write_mbs: best_snap_mbs,
        recover_ms: recover_secs * 1e3,
        recover_mbs: bytes as f64 / 1e6 / recover_secs,
        swap_p50_us,
        swap_p99_us,
        lag_p99,
    }
}

/// Serializes a report in the committed `BENCH_hotpath.json` format.
pub fn to_json(r: &HotpathReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"hotpath_baseline\",");
    let _ = writeln!(s, "  \"quick\": {},", r.quick);
    let _ = writeln!(s, "  \"kernel\": [");
    for (i, k) in r.kernel.iter().enumerate() {
        let comma = if i + 1 < r.kernel.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"k\": {}, \"scalar_gflops\": {:.4}, \"mono_gflops\": {:.4}, \"soa_gflops\": {:.4}, \"speedup\": {:.3}}}{comma}",
            k.k,
            k.scalar_gflops,
            k.mono_gflops,
            k.soa_gflops,
            k.soa_gflops / k.scalar_gflops
        );
    }
    let _ = writeln!(s, "  ],");
    let ks = &r.kernel_simd;
    let _ = writeln!(
        s,
        "  \"kernel_simd\": {{\"level\": \"{}\", \"rows\": [",
        ks.level
    );
    for (i, row) in ks.rows.iter().enumerate() {
        let comma = if i + 1 < ks.rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"k\": {}, \"scalar_gflops\": {:.4}, \"mono_gflops\": {:.4}, \"simd_gflops\": {:.4}, \"simd_speedup\": {:.3}}}{comma}",
            row.k,
            row.scalar_gflops,
            row.mono_gflops,
            row.simd_gflops,
            row.simd_gflops / row.mono_gflops
        );
    }
    let _ = writeln!(s, "  ]}},");
    let _ = writeln!(s, "  \"scheduler\": [");
    for (i, row) in r.scheduler.iter().enumerate() {
        let comma = if i + 1 < r.scheduler.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"grid\": \"{}x{}\", \"scan_ns_per_op\": {:.1}, \"pool_ns_per_op\": {:.1}}}{comma}",
            row.rows, row.cols, row.scan_ns, row.pool_ns
        );
    }
    let _ = writeln!(s, "  ],");
    let ing = &r.ingest;
    let _ = writeln!(
        s,
        "  \"ingest\": {{\"nnz\": {}, \"threads\": {}, \"parse_mps\": {:.3}, \"shuffle_serial_mps\": {:.3}, \"shuffle_par_mps\": {:.3}, \"grid_serial_ms\": {:.3}, \"grid_par_ms\": {:.3}, \"csr_serial_mps\": {:.3}, \"csr_par_mps\": {:.3}}},",
        ing.nnz,
        ing.threads,
        ing.parse_mps,
        ing.shuffle_serial_mps,
        ing.shuffle_par_mps,
        ing.grid_serial_ms,
        ing.grid_par_ms,
        ing.csr_serial_mps,
        ing.csr_par_mps
    );
    let ev = &r.eval;
    let _ = writeln!(
        s,
        "  \"eval\": {{\"nnz\": {}, \"threads\": {}, \"rmse_serial_mps\": {:.3}, \"rmse_par_mps\": {:.3}}},",
        ev.nnz, ev.threads, ev.rmse_serial_mps, ev.rmse_par_mps
    );
    let sv = &r.serving;
    let _ = writeln!(
        s,
        "  \"serving\": {{\"users\": {}, \"items\": {}, \"k\": {}, \"queries\": {}, \"count\": {}, \"threads\": {}, \"serial_qps\": {:.1}, \"par_qps\": {:.1}, \"cached_qps\": {:.1}}},",
        sv.users, sv.items, sv.k, sv.queries, sv.count, sv.threads,
        sv.serial_qps, sv.par_qps, sv.cached_qps
    );
    let sl = &r.serving_load;
    let _ = writeln!(
        s,
        "  \"serving_load\": {{\"users\": {}, \"items\": {}, \"k\": {}, \"queries\": {}, \"count\": {}, \"zipf_s\": {}, \"threads\": {}, \"points\": [",
        sl.users, sl.items, sl.k, sl.queries, sl.count, sl.zipf_s, sl.threads
    );
    for (i, p) in sl.points.iter().enumerate() {
        let comma = if i + 1 < sl.points.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"batch\": {}, \"batched_qps\": {:.1}, \"offered_qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"mean_batch\": {:.1}, \"unique_frac\": {:.3}}}{comma}",
            p.batch, p.batched_qps, p.offered_qps, p.p50_us, p.p99_us, p.mean_batch, p.unique_frac
        );
    }
    let _ = writeln!(s, "  ]}},");
    let sq = &r.serving_quantized;
    let _ = writeln!(
        s,
        "  \"serving_quantized\": {{\"users\": {}, \"items\": {}, \"k\": {}, \"queries\": {}, \"rows\": [",
        sq.users, sq.items, sq.k, sq.queries
    );
    for (i, row) in sq.rows.iter().enumerate() {
        let comma = if i + 1 < sq.rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"precision\": \"{}\", \"sweep_qps\": {:.1}, \"factor_bytes\": {}, \"recall10\": {:.4}}}{comma}",
            row.precision, row.sweep_qps, row.factor_bytes, row.recall10
        );
    }
    let _ = writeln!(s, "  ]}},");
    let lc = &r.lifecycle;
    let _ = writeln!(
        s,
        "  \"lifecycle\": {{\"users\": {}, \"items\": {}, \"k\": {}, \"epochs\": {}, \"per_epoch\": {}, \"deltas\": {}, \"snapshots\": {}, \"bytes\": {}, \"delta_write_mbs\": {:.2}, \"snapshot_write_mbs\": {:.2}, \"recover_ms\": {:.3}, \"recover_mbs\": {:.2}, \"swap_p50_us\": {:.2}, \"swap_p99_us\": {:.2}, \"lag_p99\": {}}},",
        lc.users,
        lc.items,
        lc.k,
        lc.epochs,
        lc.per_epoch,
        lc.deltas,
        lc.snapshots,
        lc.bytes,
        lc.delta_write_mbs,
        lc.snapshot_write_mbs,
        lc.recover_ms,
        lc.recover_mbs,
        lc.swap_p50_us,
        lc.swap_p99_us,
        lc.lag_p99
    );
    let _ = writeln!(s, "  \"hetero\": [");
    for (i, h) in r.hetero.iter().enumerate() {
        let comma = if i + 1 < r.hetero.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"label\": \"{}\", \"cpu_workers\": {}, \"gpus\": {}, \"nnz\": {}, \"iterations\": {}, \"ratings_per_s\": {:.0}, \"gpu_share\": {:.3}, \"rmse\": {:.5}}}{comma}",
            h.label, h.cpu_workers, h.gpus, h.nnz, h.iterations, h.ratings_per_s, h.gpu_share, h.rmse
        );
    }
    let _ = writeln!(s, "  ],");
    let oc = &r.out_of_core;
    let _ = writeln!(
        s,
        "  \"out_of_core\": {{\"nnz\": {}, \"threads\": {}, \"in_ram_ratings_per_s\": {:.0}, \"rows\": [",
        oc.nnz, oc.threads, oc.in_ram_ratings_per_s
    );
    for (i, row) in oc.rows.iter().enumerate() {
        let comma = if i + 1 < oc.rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"budget_pct\": {}, \"budget_bytes\": {}, \"ratings_per_s\": {:.0}, \"hit_rate\": {:.4}, \"io_overlap\": {:.4}}}{comma}",
            row.budget_pct, row.budget_bytes, row.ratings_per_s, row.hit_rate, row.io_overlap
        );
    }
    let _ = writeln!(s, "  ]}},");
    let e = &r.fpsgd;
    let _ = writeln!(
        s,
        "  \"fpsgd\": {{\"threads\": {}, \"k\": {}, \"nnz\": {}, \"iterations\": {}, \"ratings_per_s\": {:.0}, \"final_rmse\": {:.5}}}",
        e.threads, e.k, e.nnz, e.iterations, e.ratings_per_s, e.rmse
    );
    let _ = writeln!(s, "}}");
    s
}

/// Extracts `"key": <number>` from a one-object-per-line JSON fragment.
/// Tolerant scanner for the gate — the format is this crate's own
/// writer, not arbitrary JSON.
pub fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `(k, mono_gflops, soa_gflops)` rows of a committed baseline. Baselines
/// written before the SoA layout existed carry no `soa_gflops`; those
/// rows report `None`.
pub fn parse_kernel_rows(json: &str) -> Vec<(usize, f64, Option<f64>)> {
    json.lines()
        // The kernel_simd rows also carry `mono_gflops`; exclude them
        // by their section-unique `simd_gflops` key.
        .filter(|l| l.contains("\"mono_gflops\"") && !l.contains("\"simd_gflops\""))
        .filter_map(|l| {
            Some((
                json_num(l, "k")? as usize,
                json_num(l, "mono_gflops")?,
                json_num(l, "soa_gflops"),
            ))
        })
        .collect()
}

/// `(k, mono_gflops, simd_gflops)` rows of a committed baseline's
/// `kernel_simd` section, plus the level label it measured at.
/// Baselines written before the explicit-SIMD layer existed have none;
/// those return empty and the gate skips the check.
pub fn parse_kernel_simd(json: &str) -> (Option<String>, Vec<(usize, f64, f64)>) {
    let level = json
        .lines()
        .find(|l| l.contains("\"kernel_simd\""))
        .and_then(|l| json_str(l, "level"));
    let rows = json
        .lines()
        .filter(|l| l.contains("\"simd_gflops\""))
        .filter_map(|l| {
            Some((
                json_num(l, "k")? as usize,
                json_num(l, "mono_gflops")?,
                json_num(l, "simd_gflops")?,
            ))
        })
        .collect();
    (level, rows)
}

/// `(precision, sweep_qps, factor_bytes, recall10)` rows of a committed
/// baseline's `serving_quantized` section. Baselines written before the
/// quantized stores existed have none; those return empty and the gate
/// skips the check.
pub fn parse_serving_quantized(json: &str) -> Vec<(String, f64, u64, f64)> {
    json.lines()
        .filter(|l| l.contains("\"sweep_qps\""))
        .filter_map(|l| {
            Some((
                json_str(l, "precision")?,
                json_num(l, "sweep_qps")?,
                json_num(l, "factor_bytes")? as u64,
                json_num(l, "recall10")?,
            ))
        })
        .collect()
}

/// `par_qps` of a committed baseline's serving section. Baselines
/// written before the serving layer existed have none; those return
/// `None` and the gate skips the check.
pub fn parse_serving(json: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains("\"par_qps\""))?;
    json_num(line, "par_qps")
}

/// `(batch, batched_qps)` points of a committed baseline's serving-load
/// section. Baselines written before the batched sweep existed have
/// none; those return empty and the gate skips the check.
pub fn parse_serving_load(json: &str) -> Vec<(usize, f64)> {
    json.lines()
        .filter(|l| l.contains("\"batched_qps\""))
        .filter_map(|l| Some((json_num(l, "batch")? as usize, json_num(l, "batched_qps")?)))
        .collect()
}

/// `(delta_write_mbs, recover_mbs)` of a committed baseline's lifecycle
/// section — the two higher-is-better storage throughputs the gate
/// compares (swap and lag numbers are informational). Baselines written
/// before the live loop existed have none; those return `None` and the
/// gate skips the check.
pub fn parse_lifecycle(json: &str) -> Option<(f64, f64)> {
    let line = json.lines().find(|l| l.contains("\"delta_write_mbs\""))?;
    Some((
        json_num(line, "delta_write_mbs")?,
        json_num(line, "recover_mbs")?,
    ))
}

/// Extracts `"key": "value"` from a one-object-per-line JSON fragment.
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

/// `(label, cpu_workers, ratings_per_s)` rows of a committed baseline's
/// real-thread hetero section. Baselines written before the real-thread
/// runtime existed have none; the gate then skips the check.
pub fn parse_hetero(json: &str) -> Vec<(String, usize, f64)> {
    json.lines()
        .filter(|l| l.contains("\"gpu_share\""))
        .filter_map(|l| {
            Some((
                json_str(l, "label")?,
                json_num(l, "cpu_workers")? as usize,
                json_num(l, "ratings_per_s")?,
            ))
        })
        .collect()
}

/// `(threads, in_ram_ratings_per_s)` plus `(budget_pct, ratings_per_s)`
/// rows of a committed baseline's out-of-core section. Baselines written
/// before the spill layer existed have none; those return `None` and the
/// gate skips the check.
#[allow(clippy::type_complexity)]
pub fn parse_out_of_core(json: &str) -> Option<(usize, f64, Vec<(u32, f64)>)> {
    let head = json
        .lines()
        .find(|l| l.contains("\"in_ram_ratings_per_s\""))?;
    let threads = json_num(head, "threads")? as usize;
    let in_ram = json_num(head, "in_ram_ratings_per_s")?;
    let rows = json
        .lines()
        .filter(|l| l.contains("\"budget_pct\""))
        .filter_map(|l| {
            Some((
                json_num(l, "budget_pct")? as u32,
                json_num(l, "ratings_per_s")?,
            ))
        })
        .collect();
    Some((threads, in_ram, rows))
}

/// `(threads, k, ratings_per_s)` of a committed baseline's end-to-end
/// section.
pub fn parse_fpsgd(json: &str) -> Option<(usize, usize, f64)> {
    // Keyed on the section's unique field: the hetero rows also carry
    // `ratings_per_s`, but only the fpsgd object has `final_rmse`.
    let line = json.lines().find(|l| l.contains("\"final_rmse\""))?;
    Some((
        json_num(line, "threads")? as usize,
        json_num(line, "k")? as usize,
        json_num(line, "ratings_per_s")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_through_the_gate_parsers() {
        let report = HotpathReport {
            quick: true,
            kernel: vec![KernelRow {
                k: 8,
                scalar_gflops: 1.25,
                mono_gflops: 2.5,
                soa_gflops: 3.0,
            }],
            kernel_simd: SimdKernelBench {
                level: "avx2".into(),
                rows: vec![SimdKernelRow {
                    k: 8,
                    scalar_gflops: 1.25,
                    mono_gflops: 2.5,
                    simd_gflops: 5.0,
                }],
            },
            scheduler: vec![SchedRow {
                rows: 8,
                cols: 8,
                scan_ns: 18.0,
                pool_ns: 20.0,
            }],
            ingest: IngestBench {
                nnz: 1000,
                threads: 2,
                parse_mps: 1.0,
                shuffle_serial_mps: 2.0,
                shuffle_par_mps: 3.0,
                grid_serial_ms: 4.0,
                grid_par_ms: 5.0,
                csr_serial_mps: 6.0,
                csr_par_mps: 7.0,
            },
            eval: EvalBench {
                nnz: 1000,
                threads: 2,
                rmse_serial_mps: 8.0,
                rmse_par_mps: 9.0,
            },
            serving: ServingBench {
                users: 100,
                items: 500,
                k: 16,
                queries: 50,
                count: 10,
                threads: 2,
                serial_qps: 1000.0,
                par_qps: 1500.5,
                cached_qps: 9000.0,
            },
            serving_load: ServingLoadBench {
                users: 100,
                items: 500,
                k: 16,
                queries: 200,
                count: 10,
                zipf_s: 1.05,
                threads: 2,
                points: vec![
                    LoadPoint {
                        batch: 64,
                        batched_qps: 25000.5,
                        offered_qps: 15000.3,
                        p50_us: 2200.0,
                        p99_us: 4100.0,
                        mean_batch: 60.1,
                        unique_frac: 0.61,
                    },
                    LoadPoint {
                        batch: 256,
                        batched_qps: 48000.0,
                        offered_qps: 28800.0,
                        p50_us: 6000.0,
                        p99_us: 12000.0,
                        mean_batch: 250.0,
                        unique_frac: 0.44,
                    },
                ],
            },
            serving_quantized: ServingQuantBench {
                users: 100,
                items: 500,
                k: 16,
                queries: 50,
                rows: vec![
                    QuantRow {
                        precision: "f32".into(),
                        sweep_qps: 70000.0,
                        factor_bytes: 32000,
                        recall10: 1.0,
                    },
                    QuantRow {
                        precision: "int8".into(),
                        sweep_qps: 80000.0,
                        factor_bytes: 10000,
                        recall10: 0.9925,
                    },
                ],
            },
            lifecycle: LifecycleBench {
                users: 3000,
                items: 4500,
                k: 32,
                epochs: 20,
                per_epoch: 1500,
                deltas: 15,
                snapshots: 5,
                bytes: 12_345_678,
                delta_write_mbs: 210.25,
                snapshot_write_mbs: 400.5,
                recover_ms: 35.125,
                recover_mbs: 351.75,
                swap_p50_us: 0.42,
                swap_p99_us: 2.5,
                lag_p99: 1,
            },
            hetero: vec![HeteroRow {
                label: "relaxed".into(),
                cpu_workers: 2,
                gpus: 1,
                nnz: 1000,
                iterations: 4,
                ratings_per_s: 12345678.0,
                gpu_share: 0.625,
                rmse: 0.5,
            }],
            out_of_core: OutOfCoreBench {
                nnz: 1000,
                threads: 2,
                in_ram_ratings_per_s: 2_000_000.0,
                rows: vec![
                    OutOfCoreRow {
                        budget_pct: 100,
                        budget_bytes: 12000,
                        ratings_per_s: 1_900_000.0,
                        hit_rate: 0.97,
                        io_overlap: 1.0,
                    },
                    OutOfCoreRow {
                        budget_pct: 50,
                        budget_bytes: 6000,
                        ratings_per_s: 1_500_000.0,
                        hit_rate: 0.61,
                        io_overlap: 0.75,
                    },
                ],
            },
            fpsgd: E2e {
                threads: 4,
                k: 32,
                nnz: 1000,
                iterations: 10,
                ratings_per_s: 42954805.0,
                rmse: 0.375,
            },
        };
        let json = to_json(&report);
        assert_eq!(parse_kernel_rows(&json), vec![(8, 2.5, Some(3.0))]);
        assert_eq!(
            parse_kernel_simd(&json),
            (Some("avx2".to_string()), vec![(8, 2.5, 5.0)])
        );
        assert_eq!(
            parse_serving_quantized(&json),
            vec![
                ("f32".to_string(), 70000.0, 32000, 1.0),
                ("int8".to_string(), 80000.0, 10000, 0.9925),
            ]
        );
        assert_eq!(parse_fpsgd(&json), Some((4, 32, 42954805.0)));
        assert_eq!(parse_serving(&json), Some(1500.5));
        assert_eq!(
            parse_serving_load(&json),
            vec![(64, 25000.5), (256, 48000.0)]
        );
        assert_eq!(
            parse_hetero(&json),
            vec![("relaxed".to_string(), 2, 12345678.0)]
        );
        assert_eq!(parse_lifecycle(&json), Some((210.25, 351.75)));
        assert_eq!(
            parse_out_of_core(&json),
            Some((2, 2_000_000.0, vec![(100, 1_900_000.0), (50, 1_500_000.0)]))
        );
    }

    #[test]
    fn parse_out_of_core_absent_is_none() {
        assert_eq!(
            parse_out_of_core("{\"hetero\": [{\"ratings_per_s\": 1}]}"),
            None
        );
    }

    #[test]
    fn parse_lifecycle_absent_is_none() {
        assert_eq!(parse_lifecycle("{\"serving\": {\"par_qps\": 1}}"), None);
    }

    #[test]
    fn parse_hetero_absent_is_empty() {
        assert!(parse_hetero("{\"fpsgd\": {\"ratings_per_s\": 1}}").is_empty());
    }

    #[test]
    fn parse_serving_absent_is_none() {
        assert_eq!(parse_serving("{\"fpsgd\": {\"ratings_per_s\": 1}}"), None);
    }

    #[test]
    fn parse_serving_load_absent_is_empty() {
        assert!(parse_serving_load("{\"serving\": {\"par_qps\": 1}}").is_empty());
    }

    #[test]
    fn parse_kernel_simd_absent_is_empty() {
        let (level, rows) = parse_kernel_simd("{\"kernel\": [{\"mono_gflops\": 1.0}]}");
        assert_eq!(level, None);
        assert!(rows.is_empty());
    }

    #[test]
    fn parse_serving_quantized_absent_is_empty() {
        assert!(parse_serving_quantized("{\"serving\": {\"par_qps\": 1}}").is_empty());
    }

    #[test]
    fn json_num_handles_missing_and_scientific() {
        assert_eq!(json_num("\"x\": 1.5e3,", "x"), Some(1500.0));
        assert_eq!(json_num("\"x\": 2", "y"), None);
    }
}
