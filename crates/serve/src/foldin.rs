//! Fold-in: admit a new user (or item) into a trained model without
//! retraining.
//!
//! With the item factors `Q` frozen, a new user's factor `p` is the
//! solution of the **convex** single-row least-squares problem
//!
//! ```text
//! min_p  Σ_{(v, r) ∈ S}  (r − p·q_v)²  +  λ_P·|p|²
//! ```
//!
//! over the user's observed ratings `S`. This module solves it with a
//! fixed number of deterministic SGD passes over `S`, each step reusing
//! the scalar fold-in kernel `mf_sgd::kernel::sgd_step_fixed_q` (the
//! exact `p`-rule of the training kernel with `Q` held still), under a
//! decaying step size. Because the objective is convex and the visit
//! order is the storage order (no shuffling), the result is a
//! deterministic function of `(Q, ratings, config)` — the same on every
//! machine, every thread count, every time.
//!
//! Quality: the serving integration tests pin that fold-in factors score
//! within a small RMSE band of the factors a full retrain would produce
//! (the checkpoint's whole point — cuMF-style deployments fold new rows
//! into yesterday's `Q` between retrains).

use mf_sgd::{kernel, Model};

/// Hyper-parameters of the fold-in solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldInConfig {
    /// Full passes over the new row's ratings. The problem is a small
    /// convex quadratic; 64 passes is far past the knee for typical
    /// rating counts.
    pub passes: u32,
    /// Initial step size γ₀.
    pub gamma: f32,
    /// Per-pass inverse decay: pass `t` uses `γ₀ / (1 + decay · t)`.
    pub decay: f32,
    /// Ridge term λ (the trainer's λ_P for users, λ_Q for items).
    pub lambda: f32,
}

impl Default for FoldInConfig {
    fn default() -> Self {
        FoldInConfig {
            passes: 64,
            gamma: 0.1,
            decay: 0.05,
            lambda: 0.02,
        }
    }
}

/// A fold-in solver borrowing a trained model's frozen factors.
#[derive(Debug, Clone, Copy)]
pub struct FoldIn<'a> {
    model: &'a Model,
    cfg: FoldInConfig,
}

impl<'a> FoldIn<'a> {
    /// A solver over `model`'s factors with the default configuration.
    pub fn new(model: &'a Model) -> FoldIn<'a> {
        FoldIn::with_config(model, FoldInConfig::default())
    }

    /// A solver with explicit hyper-parameters.
    pub fn with_config(model: &'a Model, cfg: FoldInConfig) -> FoldIn<'a> {
        assert!(cfg.passes > 0, "fold-in needs at least one pass");
        assert!(cfg.gamma > 0.0 && cfg.gamma.is_finite(), "invalid gamma");
        assert!(cfg.decay >= 0.0, "invalid decay");
        FoldIn { model, cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> FoldInConfig {
        self.cfg
    }

    /// Solves for a new **user's** factor from `(item, rating)` pairs
    /// against the frozen `Q`. Returns a `k`-vector ready to serve (or
    /// to append to `P`). With no ratings the zero vector (the ridge
    /// minimizer) comes back.
    ///
    /// # Panics
    ///
    /// Panics if any item id is out of range.
    pub fn new_user(&self, ratings: &[(u32, f32)]) -> Vec<f32> {
        for &(v, _) in ratings {
            assert!(v < self.model.ncols(), "fold-in item {v} out of range");
        }
        self.solve(ratings, |v| self.model.q_row(v), kernel::sgd_step_fixed_q)
    }

    /// Solves for a new **item's** factor from `(user, rating)` pairs
    /// against the frozen `P` — the mirror of [`FoldIn::new_user`].
    ///
    /// # Panics
    ///
    /// Panics if any user id is out of range.
    pub fn new_item(&self, ratings: &[(u32, f32)]) -> Vec<f32> {
        for &(u, _) in ratings {
            assert!(u < self.model.nrows(), "fold-in user {u} out of range");
        }
        self.solve(
            ratings,
            |u| self.model.p_row(u),
            |x, fixed, r, g, l| kernel::sgd_step_fixed_p(fixed, x, r, g, l),
        )
    }

    /// The shared solve loop: `x` is the unknown row, `fixed_row(id)`
    /// fetches the frozen counterpart, `step` applies one kernel update.
    fn solve<'m>(
        &self,
        ratings: &[(u32, f32)],
        fixed_row: impl Fn(u32) -> &'m [f32],
        step: impl Fn(&mut [f32], &[f32], f32, f32, f32) -> f32,
    ) -> Vec<f32> {
        let k = self.model.k();
        let mut x = vec![0.0f32; k];
        if ratings.is_empty() || k == 0 {
            return x;
        }
        // Warm start centered on the row's mean rating: with entries
        // x_i = √(r̄/k) · sign-free init, x·q ≈ r̄ when q was itself
        // mean-centered at init (Model::init_for_ratings). For already
        // well-trained Q this only shortens the transient; the converged
        // point is set by the objective, not the start.
        let mean = ratings.iter().map(|&(_, r)| r as f64).sum::<f64>() / ratings.len() as f64;
        let x0 = if mean > 0.0 {
            (mean as f32 / k as f32).sqrt()
        } else {
            1.0 / (k as f32).sqrt()
        };
        x.fill(x0);
        for t in 0..self.cfg.passes {
            let gamma = self.cfg.gamma / (1.0 + self.cfg.decay * t as f32);
            for &(id, r) in ratings {
                step(&mut x, fixed_row(id), r, gamma, self.cfg.lambda);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A rank-1 "trained" model: q_v = v+1, so a user rating item v with
    /// r = c·(v+1) has exact factor p = c.
    fn rank1_model() -> Model {
        Model::from_parts(1, 4, 1, vec![0.0], vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn recovers_exact_rank1_user() {
        let m = rank1_model();
        let fold = FoldIn::with_config(
            &m,
            FoldInConfig {
                lambda: 0.0,
                ..FoldInConfig::default()
            },
        );
        let p = fold.new_user(&[(0, 1.5), (1, 3.0), (3, 6.0)]);
        assert!((p[0] - 1.5).abs() < 1e-3, "p = {:?}", p);
    }

    #[test]
    fn recovers_exact_rank1_item() {
        // Users u have p_u = u+1; a new item rated r = 2·(u+1) has q = 2.
        let m = Model::from_parts(3, 1, 1, vec![1.0, 2.0, 3.0], vec![0.0]);
        let fold = FoldIn::with_config(
            &m,
            FoldInConfig {
                lambda: 0.0,
                ..FoldInConfig::default()
            },
        );
        let q = fold.new_item(&[(0, 2.0), (1, 4.0), (2, 6.0)]);
        assert!((q[0] - 2.0).abs() < 1e-3, "q = {:?}", q);
    }

    #[test]
    fn no_ratings_gives_zero_vector() {
        let m = Model::init(4, 4, 8, 1);
        assert_eq!(FoldIn::new(&m).new_user(&[]), vec![0.0; 8]);
    }

    #[test]
    fn deterministic() {
        let m = Model::init(10, 20, 16, 5);
        let ratings: Vec<(u32, f32)> = (0..12).map(|i| (i, 1.0 + (i % 5) as f32)).collect();
        let fold = FoldIn::new(&m);
        let a = fold.new_user(&ratings);
        let b = fold.new_user(&ratings);
        assert_eq!(a, b);
    }

    #[test]
    fn ridge_shrinks_the_solution() {
        let m = rank1_model();
        let loose = FoldIn::with_config(
            &m,
            FoldInConfig {
                lambda: 0.0,
                ..FoldInConfig::default()
            },
        );
        let tight = FoldIn::with_config(
            &m,
            FoldInConfig {
                lambda: 5.0,
                ..FoldInConfig::default()
            },
        );
        let ratings = [(1u32, 3.0f32), (2, 4.5)];
        assert!(tight.new_user(&ratings)[0].abs() < loose.new_user(&ratings)[0].abs());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_item_panics() {
        let m = rank1_model();
        let _ = FoldIn::new(&m).new_user(&[(99, 1.0)]);
    }
}
