//! The real-thread heterogeneous trainer, end to end: the *same*
//! `StarScheduler` the virtual-time experiments use — built by the same
//! calibrated offline phase — driven over real OS threads, in both
//! execution modes, with measured throughputs fed back into the cost
//! models.
//!
//! Prints, for one seeded dataset:
//! * the planned α and steal ratio from the offline calibration,
//! * a relaxed (free-running) run: wall-clock throughput, realized GPU
//!   share, steals, and the *measured* per-device rates / refit linear
//!   cost models / measured α,
//! * an exclusive (deterministic-rounds) run, re-run at two worker
//!   counts to demonstrate bit-identical factors,
//! * the virtual-time trainer on the identical scheduler setup, to show
//!   both worlds land on the same quality.
//!
//! Run with: `cargo run --release --example hetero_train`

use hsgd_star::hetero::experiments::{preprocess_pair, star_setup};
use hsgd_star::hetero::runtime::{run_training_real, ExecMode, ThreadedExecutor};
use hsgd_star::hetero::scheduler::BlockScheduler;
use hsgd_star::hetero::trainer::run_training;
use hsgd_star::hetero::{executor, CostModelKind, CpuSpec, DevicePool, HeteroConfig, TrainOutcome};
use hsgd_star::par::ThreadPool;
use hsgd_star::sgd::{HyperParams, LearningRate};
use mf_des::SimTime;

const SCALE: f64 = 100.0;

fn pool_for(cfg: &HeteroConfig, gpus: Vec<hsgd_star::hetero::devices::GpuWorker>) -> DevicePool {
    let ng = gpus.len();
    DevicePool {
        cpu_workers: cfg.nc,
        gpus,
        gpu_start: vec![SimTime::ZERO; ng],
    }
}

fn describe(tag: &str, out: &TrainOutcome) {
    let r = &out.report;
    let total = (r.cpu_points + r.gpu_points) as f64;
    println!(
        "{tag}: {:.3}s, {:.1}M ratings/s, RMSE {:.4}, GPU share {:.0}%, steals {}",
        r.virtual_secs,
        total / r.virtual_secs / 1e6,
        r.final_test_rmse,
        r.gpu_share() * 100.0,
        r.steals
    );
    if let Some(m) = &r.measured {
        let fmt_rate = |x: Option<f64>| match x {
            Some(v) => format!("{:.1}M pts/s", v / 1e6),
            None => "-".into(),
        };
        println!(
            "    measured: cpu {} gpu {}  α_measured {}  steal ratio {:.2}",
            fmt_rate(m.cpu_points_per_sec),
            fmt_rate(m.gpu_points_per_sec),
            m.alpha_measured
                .map(|a| format!("{a:.2}"))
                .unwrap_or_else(|| "-".into()),
            m.final_dynamic_ratio.unwrap_or(f64::NAN),
        );
        if let Some(c) = &m.cpu_model {
            println!("    refit CPU cost:  t = {:.3e}·points + {:.3e}", c.a, c.b);
        }
        if let Some(g) = &m.gpu_model {
            println!("    refit GPU cost:  t = {:.3e}·points + {:.3e}", g.a, g.b);
        }
    }
}

fn main() {
    let ds = hsgd_star::data::generator::generate(&hsgd_star::data::GeneratorConfig {
        name: "hetero_train".into(),
        num_users: 3_000,
        num_items: 1_500,
        num_train: 120_000,
        num_test: 12_000,
        planted_rank: 4,
        noise_std: 0.4,
        rating_min: 1.0,
        rating_max: 5.0,
        user_skew: 0.4,
        item_skew: 0.4,
        seed: 5,
    });
    let cfg = HeteroConfig {
        hyper: HyperParams {
            k: 16,
            lambda_p: 0.05,
            lambda_q: 0.05,
            gamma: 0.01,
            schedule: LearningRate::Fixed,
        },
        nc: 4,
        ng: 1,
        gpu: hsgd_star::gpu::GpuSpec::quadro_p4000().scaled_down(SCALE),
        cpu: CpuSpec::default().scaled_down(SCALE),
        iterations: 8,
        seed: 7,
        dynamic_scheduling: true,
        cost_model: CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    let (train, test) = preprocess_pair(&ds.train, &ds.test, cfg.seed);
    println!(
        "dataset: {} users × {} items, {} train ratings; rig: {} CPU workers + {} GPU",
        train.nrows(),
        train.ncols(),
        train.nnz(),
        cfg.nc,
        cfg.ng
    );

    println!("\n== offline phase (shared by both worlds) ==");
    let setup = star_setup(&train, &cfg, CostModelKind::Tailored, true);
    println!(
        "planned α = {:.3} (grid {}×{}), calibrated steal ratio = {:.2}",
        setup.alpha,
        setup.scheduler.spec().nrow_blocks(),
        setup.scheduler.spec().ncol_blocks(),
        setup.scheduler.steal_ratio()
    );

    println!("\n== real threads, relaxed (free-running, measured feedback) ==");
    let relaxed = run_training_real(
        &train,
        &test,
        setup.scheduler,
        pool_for(&cfg, setup.gpus),
        &cfg,
        ExecMode::Relaxed,
        Some(setup.alpha),
        "HSGD*/real-relaxed",
    );
    describe("relaxed ", &relaxed);

    println!("\n== real threads, exclusive (deterministic rounds) ==");
    let run_excl = |workers: usize| {
        let setup = star_setup(&train, &cfg, CostModelKind::Tailored, true);
        let pool = ThreadPool::new(workers);
        let mut exec = ThreadedExecutor::with_pool(&pool);
        executor::train_with_executor(
            &train,
            &test,
            setup.scheduler,
            pool_for(&cfg, setup.gpus),
            &cfg,
            Some(setup.alpha),
            "HSGD*/real-exclusive",
            |_, _| {},
            &mut exec,
        )
    };
    let e1 = run_excl(1);
    let e2 = run_excl(2);
    describe("1 worker ", &e1);
    describe("2 workers", &e2);
    assert_eq!(
        e1.model, e2.model,
        "exclusive mode must be bit-identical across worker counts"
    );
    println!("    factors bit-identical across 1 and 2 workers ✓");

    println!("\n== virtual-time DES, same scheduler setup ==");
    let vsetup = star_setup(&train, &cfg, CostModelKind::Tailored, true);
    let virt = run_training(
        &train,
        &test,
        vsetup.scheduler,
        pool_for(&cfg, vsetup.gpus),
        &cfg,
        Some(vsetup.alpha),
        "HSGD*/virtual",
    );
    describe("virtual ", &virt);
    let drift = (virt.report.final_test_rmse - relaxed.report.final_test_rmse).abs();
    println!(
        "\nvirtual vs real quality drift: {:.4} RMSE (same scheduler, two worlds)",
        drift
    );
    assert!(drift <= 0.05, "worlds diverged past the pinned band");
}
