//! Property tests for the online throughput observer under adversarial
//! sample streams.
//!
//! The observer sits between raw wall-clock measurements and the Eq. 8
//! workload-split solver, so it must absorb anything a hostile clock or a
//! fault-injected device can produce — zero-duration tasks, single-sample
//! runs, NaN/∞ garbage, inverted size/time correlation, magnitudes near
//! overflow — without ever handing the solver a non-finite or
//! order-incorrect cost model. Each property runs over a few hundred
//! seeded random streams; failures print the seed for replay.

use mf_cost::alpha::{balance_alpha, split_workload};
use mf_cost::models::{CostModel, LinearCost};
use mf_cost::observe::ThroughputObserver;

/// Deterministic splitmix64 stream — mf-cost deliberately has no rand
/// dependency, so the tests carry their own generator.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One adversarial sample: mixes plausible measurements with every kind
/// of garbage a broken clock or dying device can emit.
fn adversarial_sample(rng: &mut Rng) -> (f64, f64) {
    match rng.below(12) {
        // Plausible linear-ish measurement with noise.
        0..=4 => {
            let size = 100.0 + rng.unit() * 1e6;
            let secs = 1e-7 * size * (0.5 + rng.unit()) + rng.unit() * 1e-3;
            (size, secs)
        }
        // Inverted correlation: big task, suspiciously fast.
        5 => (1e6 + rng.unit() * 1e6, 1e-6 + rng.unit() * 1e-5),
        // Zero-duration task (timer granularity).
        6 => (1.0 + rng.unit() * 1e4, 0.0),
        // Zero or negative size.
        7 => (-rng.unit() * 100.0, rng.unit()),
        // Non-finite garbage.
        8 => (f64::NAN, rng.unit()),
        9 => (rng.unit() * 100.0, f64::INFINITY),
        // Near-overflow magnitudes.
        10 => (f64::MAX / 4.0, f64::MAX / 4.0),
        // Denormal-tiny but positive.
        _ => (f64::MIN_POSITIVE, f64::MIN_POSITIVE),
    }
}

/// Builds an observer fed `n` adversarial samples from `seed`.
fn adversarial_observer(seed: u64, n: usize) -> ThroughputObserver {
    let mut rng = Rng(seed);
    let mut o = ThroughputObserver::new();
    for _ in 0..n {
        let (size, secs) = adversarial_sample(&mut rng);
        o.record(size, secs);
    }
    o
}

/// Probe sizes spanning many decades, for monotonicity checks.
const PROBES: [f64; 7] = [0.0, 1.0, 1e2, 1e4, 1e6, 1e9, 1e12];

#[test]
fn mean_rate_is_finite_positive_or_none() {
    for seed in 0..300u64 {
        let o = adversarial_observer(seed, 64);
        if let Some(r) = o.mean_rate() {
            assert!(
                r.is_finite() && r > 0.0,
                "seed {seed}: mean_rate reported {r}"
            );
        }
    }
}

#[test]
fn fitted_model_is_finite_and_order_correct() {
    let mut fitted = 0usize;
    for seed in 0..300u64 {
        let o = adversarial_observer(seed, 64);
        let Some(m) = o.fit_linear() else { continue };
        fitted += 1;
        assert!(
            m.a.is_finite() && m.b.is_finite(),
            "seed {seed}: non-finite coefficients {m:?}"
        );
        assert!(m.a >= 0.0, "seed {seed}: negative slope {m:?}");
        let mut prev = -1.0f64;
        for &s in &PROBES {
            let t = m.time_secs(s);
            assert!(
                t.is_finite() && t >= 0.0,
                "seed {seed}: time_secs({s}) = {t}"
            );
            assert!(
                t >= prev,
                "seed {seed}: time_secs not monotone at size {s}: {t} < {prev}"
            );
            prev = t;
        }
    }
    assert!(fitted > 0, "generator never produced a fittable stream");
}

#[test]
fn alpha_resolve_stays_in_unit_interval_under_adversarial_fits() {
    // Pair two independently poisoned observers as the GPU and CPU
    // models and re-solve Eq. 8 the way Meter::finish does at run end.
    let mut solved = 0usize;
    for seed in 0..300u64 {
        let gpu = adversarial_observer(seed.wrapping_mul(2).wrapping_add(1), 64);
        let cpu = adversarial_observer(seed.wrapping_mul(2).wrapping_add(2), 64);
        let (Some(gm), Some(cm)) = (gpu.fit_linear(), cpu.fit_linear()) else {
            continue;
        };
        solved += 1;
        for &(ng, nc) in &[(1usize, 1usize), (1, 8), (2, 4)] {
            let (alpha, makespan) = split_workload(1e7, &gm, &cm, ng, nc);
            assert!(
                alpha.is_finite() && (0.0..=1.0).contains(&alpha),
                "seed {seed} ng={ng} nc={nc}: alpha = {alpha}"
            );
            assert!(
                makespan.is_finite() && makespan >= 0.0,
                "seed {seed} ng={ng} nc={nc}: makespan = {makespan}"
            );
        }
    }
    assert!(solved > 0, "generator never produced a solvable pair");
}

#[test]
fn alpha_is_order_correct_in_device_speed() {
    // A strictly faster GPU model must never receive *less* work: α is
    // monotone in the speed ratio for fixed CPU cost.
    for seed in 0..100u64 {
        let o = adversarial_observer(seed, 64);
        let Some(cpu) = o.fit_linear() else { continue };
        let mut prev_alpha = -1.0f64;
        for speedup in [0.25, 1.0, 4.0, 16.0] {
            let gpu = LinearCost::new(cpu.a / speedup, cpu.b / speedup);
            let a = balance_alpha(
                |x| gpu.time_secs(x * 1e7),
                |x| cpu.time_secs(x * 1e7),
                1.0,
                1.0,
            );
            assert!(
                a >= prev_alpha - 1e-9,
                "seed {seed}: alpha fell from {prev_alpha} to {a} as GPU sped up {speedup}x"
            );
            prev_alpha = a;
        }
    }
}

#[test]
fn zero_duration_only_stream_reports_nothing() {
    let mut o = ThroughputObserver::new();
    for i in 1..=32 {
        o.record(i as f64 * 100.0, 0.0);
    }
    assert!(o.is_empty(), "zero-duration samples must be rejected");
    assert_eq!(o.mean_rate(), None);
    assert!(o.fit_linear().is_none());
}

#[test]
fn single_sample_gives_rate_but_no_fit() {
    let mut o = ThroughputObserver::new();
    o.record(5000.0, 0.25);
    assert_eq!(o.len(), 1);
    let r = o.mean_rate().expect("one good sample defines a rate");
    assert!((r - 20_000.0).abs() < 1e-9);
    assert!(
        o.fit_linear().is_none(),
        "one point cannot support a line fit"
    );
}

#[test]
fn overflow_magnitude_samples_never_leak_non_finite_rates() {
    // Two f64::MAX/4 samples make the running totals overflow to ∞ is
    // avoided (MAX/4 + MAX/4 is finite), but four push Σsize past MAX.
    let mut o = ThroughputObserver::new();
    for _ in 0..8 {
        o.record(f64::MAX / 4.0, 1.0);
    }
    match o.mean_rate() {
        None => {}
        Some(r) => assert!(r.is_finite() && r > 0.0, "leaked rate {r}"),
    }
    if let Some(m) = o.fit_linear() {
        assert!(m.a.is_finite() && m.b.is_finite(), "leaked model {m:?}");
    }
}
