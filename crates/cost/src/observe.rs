//! Online throughput observation — the feedback half of the cost-model
//! loop.
//!
//! The offline phase ([`crate::calibrate`]) fits cost models from probe
//! measurements *before* training. This module records what a device
//! actually did *during* training — `(workload size, wall seconds)` per
//! completed task — so the running system can replace assumed throughputs
//! with measured ones: the real-thread trainer feeds the observed rates
//! back into `StarScheduler`'s dynamic steal ratio, and at the end of a
//! run the samples are refit into the same [`LinearCost`] family the α
//! solver consumes, yielding a *measured* workload split to compare
//! against the planned one.

use crate::fit;
use crate::models::LinearCost;

/// Records per-task `(size, secs)` samples for one device class and
/// derives rates and fitted cost models from them.
///
/// Recording is O(1) per sample plus an appended pair for the end-of-run
/// fit; all derived quantities are computed on demand.
#[derive(Debug, Clone, Default)]
pub struct ThroughputObserver {
    samples: Vec<(f64, f64)>,
    total_size: f64,
    total_secs: f64,
}

impl ThroughputObserver {
    /// An empty observer.
    pub fn new() -> ThroughputObserver {
        ThroughputObserver::default()
    }

    /// Records one completed task: `size` work units took `secs` wall
    /// seconds. Non-finite or non-positive measurements are ignored (a
    /// clock hiccup must not poison the fit).
    pub fn record(&mut self, size: f64, secs: f64) {
        if !(size.is_finite() && secs.is_finite()) || size <= 0.0 || secs <= 0.0 {
            return;
        }
        self.samples.push((size, secs));
        self.total_size += size;
        self.total_secs += secs;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Aggregate throughput in units/second over everything recorded —
    /// the robust single number used for live feedback (one bad sample
    /// cannot swing it the way a per-sample rate could).
    pub fn mean_rate(&self) -> Option<f64> {
        if self.total_secs > 0.0 && self.total_size > 0.0 {
            // The totals can overflow to ∞ under pathologically long
            // streams of huge-but-finite samples; a non-finite rate would
            // poison every consumer downstream, so refuse to report one.
            let rate = self.total_size / self.total_secs;
            rate.is_finite().then_some(rate)
        } else {
            None
        }
    }

    /// Fits `t = a·size + b` over the recorded samples by OLS — the same
    /// linear family the α solver and Table II consume. Returns `None`
    /// when the samples cannot support a fit: fewer than
    /// [`ThroughputObserver::MIN_FIT_SAMPLES`] points, all sizes (nearly)
    /// coincident (degenerate regression), or an OLS result that is not
    /// finite (the sums overflowed under extreme sample magnitudes).
    ///
    /// The returned model is always *order-correct*: `time_secs` is
    /// monotone non-decreasing in size. Adversarial sample streams — e.g.
    /// large tasks that happened to finish faster than small ones — can
    /// drive the raw OLS slope negative, which would tell the α solver
    /// that more work takes less time and push the split to a boundary.
    /// In that case the fit falls back to the through-origin mean-rate
    /// model `t = size / mean_rate`, which is the best constant-throughput
    /// summary of the same data and is always non-decreasing.
    pub fn fit_linear(&self) -> Option<LinearCost> {
        if self.samples.len() < Self::MIN_FIT_SAMPLES {
            return None;
        }
        let min_x = self
            .samples
            .iter()
            .map(|s| s.0)
            .fold(f64::INFINITY, f64::min);
        let max_x = self
            .samples
            .iter()
            .map(|s| s.0)
            .fold(f64::NEG_INFINITY, f64::max);
        if max_x - min_x <= 1e-9 * (max_x.abs() + 1.0) {
            return None;
        }
        match fit::try_ols(&self.samples) {
            Some(f) if f.a >= 0.0 && f.b.is_finite() => Some(LinearCost::new(f.a, f.b)),
            // Negative slope or overflowed moments: fall back to the
            // through-origin mean-rate model.
            _ => {
                let a = self.total_secs / self.total_size;
                (a.is_finite() && a > 0.0).then(|| LinearCost::new(a, 0.0))
            }
        }
    }

    /// Minimum sample count before [`ThroughputObserver::fit_linear`]
    /// reports a model.
    pub const MIN_FIT_SAMPLES: usize = 4;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::CostModel;

    #[test]
    fn mean_rate_aggregates() {
        let mut o = ThroughputObserver::new();
        o.record(100.0, 1.0);
        o.record(300.0, 1.0);
        assert_eq!(o.len(), 2);
        assert!((o.mean_rate().unwrap() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn bad_samples_are_ignored() {
        let mut o = ThroughputObserver::new();
        o.record(0.0, 1.0);
        o.record(10.0, 0.0);
        o.record(f64::NAN, 1.0);
        o.record(10.0, f64::INFINITY);
        assert!(o.is_empty());
        assert_eq!(o.mean_rate(), None);
        assert_eq!(o.fit_linear(), None);
    }

    #[test]
    fn fit_recovers_planted_line() {
        let mut o = ThroughputObserver::new();
        // t = 2e-6·size + 1e-3, sizes spread over a decade.
        for i in 1..=10 {
            let size = (i * 1000) as f64;
            o.record(size, 2e-6 * size + 1e-3);
        }
        let m = o.fit_linear().expect("well-spread samples must fit");
        assert!((m.a - 2e-6).abs() < 1e-12);
        assert!((m.b - 1e-3).abs() < 1e-9);
        assert!((m.time_secs(5000.0) - (2e-6 * 5000.0 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn degenerate_sizes_refuse_to_fit() {
        let mut o = ThroughputObserver::new();
        for _ in 0..10 {
            o.record(1000.0, 0.5);
        }
        assert_eq!(o.fit_linear(), None, "coincident sizes cannot fit a line");
        assert!(o.mean_rate().is_some(), "the rate is still well-defined");
    }

    #[test]
    fn inverted_stream_falls_back_to_mean_rate_model() {
        // Bigger tasks finishing *faster* — raw OLS slope would be
        // negative, telling the solver more work takes less time.
        let mut o = ThroughputObserver::new();
        o.record(1000.0, 4.0);
        o.record(2000.0, 3.0);
        o.record(3000.0, 2.0);
        o.record(4000.0, 1.0);
        let m = o.fit_linear().expect("fallback model must exist");
        assert!(m.a > 0.0, "slope must be positive, got {}", m.a);
        assert_eq!(m.b, 0.0);
        // Through-origin mean-rate model: a = Σsecs/Σsize = 10/10000.
        assert!((m.a - 1e-3).abs() < 1e-15);
        assert!(m.time_secs(2000.0) >= m.time_secs(1000.0));
    }

    #[test]
    fn too_few_samples_refuse_to_fit() {
        let mut o = ThroughputObserver::new();
        o.record(1.0, 1.0);
        o.record(2.0, 2.0);
        assert!(o.fit_linear().is_none());
    }
}
