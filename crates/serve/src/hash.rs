//! Checkpoint checksums — re-export of the workspace XXH64.
//!
//! The implementation moved to [`mf_sparse::hash`] when the v3 block
//! arena (out-of-core training) needed the same hash below this crate in
//! the dependency graph. These re-exports keep every existing
//! `mf_serve::hash::…` path working; the algorithm, seed convention, and
//! test vectors are unchanged (see `docs/FORMAT.md`).

pub use mf_sparse::hash::{xxh64, Xxh64};
