//! The tiny filesystem seam the durable lifecycle writes through.
//!
//! Everything the live loop persists — full `MFCK` snapshots and v2
//! deltas — goes through [`Vfs::publish`], which encodes the one
//! discipline that makes a crash at *any* byte recoverable:
//!
//! ```text
//! write to <name>.tmp  →  fsync  →  rename(<name>.tmp, <name>)  →  fsync(dir)
//! ```
//!
//! A reader (or [`crate::delta::recover`]) therefore only ever sees a
//! file under its final name if every byte of it was durable first; a
//! crash mid-write leaves at worst an orphaned `*.tmp`, which recovery
//! reports and ignores. The trait exists so `mf-fuzz` can substitute an
//! in-memory filesystem that injects short writes, ENOSPC, torn
//! renames, bit flips, and byte-exact crash kills — the production
//! implementation is the zero-state [`RealFs`].

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Filesystem operations the checkpoint/delta/recovery paths need.
/// `&self` everywhere: implementations carry interior mutability so one
/// instance can be shared between a trainer thread and a harness.
pub trait Vfs: Send + Sync {
    /// File names (not paths) present in `dir`, sorted ascending.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Opens `path` for streaming reads.
    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>>;

    /// Atomically publishes `dir/name`: streams `write` into a
    /// temporary, makes it durable, and renames it into place. On error
    /// the final name is untouched (the temporary may survive a crash
    /// as an orphan; it never shadows a committed file).
    fn publish(
        &self,
        dir: &Path,
        name: &str,
        write: &mut dyn FnMut(&mut dyn Write) -> io::Result<()>,
    ) -> io::Result<()>;
}

/// Suffix of in-flight temporaries; recovery treats `*.tmp` as the
/// debris of an interrupted writer.
pub const TMP_SUFFIX: &str = ".tmp";

/// The real filesystem, with the full fsync-then-rename discipline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl Vfs for RealFs {
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        Ok(names)
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(File::open(path)?))
    }

    fn publish(
        &self,
        dir: &Path,
        name: &str,
        write: &mut dyn FnMut(&mut dyn Write) -> io::Result<()>,
    ) -> io::Result<()> {
        let tmp = dir.join(format!("{name}{TMP_SUFFIX}"));
        let dest = dir.join(name);
        let mut f = File::create(&tmp)?;
        // Data must be durable *before* the rename publishes the name:
        // rename is atomic on POSIX, so the only observable states are
        // "old file" and "new file, fully synced".
        let res = write(&mut f).and_then(|()| f.sync_all());
        drop(f);
        if let Err(e) = res {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &dest)?;
        // Make the rename itself durable. Directory fsync is
        // best-effort: not all platforms allow opening a directory for
        // sync, and the data above is already safe either way.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mf_serve_vfs_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publish_is_atomic_and_listable() {
        let dir = tmp_dir("pub");
        RealFs
            .publish(&dir, "a.bin", &mut |w| w.write_all(b"hello"))
            .unwrap();
        let mut buf = Vec::new();
        RealFs
            .open(&dir.join("a.bin"))
            .unwrap()
            .read_to_end(&mut buf)
            .unwrap();
        assert_eq!(buf, b"hello");
        let names = RealFs.list(&dir).unwrap();
        assert_eq!(names, vec!["a.bin".to_string()]);
        // No temp debris after a clean publish.
        assert!(!dir.join("a.bin.tmp").exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn failed_write_leaves_no_final_file() {
        let dir = tmp_dir("fail");
        let err = RealFs.publish(&dir, "b.bin", &mut |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("writer died"))
        });
        assert!(err.is_err());
        assert!(!dir.join("b.bin").exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
