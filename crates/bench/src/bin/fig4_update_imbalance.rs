//! Figure 4 / Example 3 — the update-count imbalance of the
//! straightforward HSGD versus HSGD\*.
//!
//! HSGD's least-count-among-independent policy lets the much faster GPU
//! spin on whatever blocks happen to be free, so per-block pass counts
//! skew badly; HSGD\*'s region discipline keeps them within the soft-cap
//! slack of the target. Printed: distribution statistics plus a coarse
//! count heat map of the HSGD grid (the darker cells of the paper's
//! Fig. 4).

use hsgd_core::{experiments, Algorithm};
use mf_bench::{print_table, BenchArgs};
use mf_data::PresetName;

fn main() {
    let args = BenchArgs::parse();
    let (p, ds) = args.dataset(PresetName::MovieLens);
    let cfg = args.rig(&p, args.scale_for(PresetName::MovieLens));

    let mut rows = Vec::new();
    let mut hsgd_counts = None;
    for alg in [Algorithm::Hsgd, Algorithm::HsgdStar] {
        let out = experiments::run(alg, &ds.train, &ds.test, &cfg);
        let s = out.report.imbalance();
        rows.push(vec![
            alg.label().to_string(),
            s.min.to_string(),
            s.max.to_string(),
            format!("{:.2}", s.mean),
            format!("{:.2}", s.std),
            format!("{:.3}", s.cv),
            format!("{:.3}", s.gini),
        ]);
        if alg == Algorithm::Hsgd {
            hsgd_counts = Some(out.report.update_counts.clone());
        }
    }
    print_table(
        "Fig. 4 / Example 3 — per-block update-count distribution",
        &["algorithm", "min", "max", "mean", "std", "cv", "gini"],
        &rows,
    );

    // Coarse heat map of the HSGD grid (rows × cols of Rule 1's layout).
    if let Some(counts) = hsgd_counts {
        let cols = cfg.nc + cfg.ng;
        let max = *counts.iter().max().unwrap_or(&1) as f64;
        println!("\nHSGD grid heat map ('.'<25% ':'<50% '+'<75% '#'>=75% of max {max}):");
        for chunk in counts.chunks(cols) {
            let line: String = chunk
                .iter()
                .map(|&c| {
                    let frac = c as f64 / max.max(1.0);
                    if frac < 0.25 {
                        '.'
                    } else if frac < 0.5 {
                        ':'
                    } else if frac < 0.75 {
                        '+'
                    } else {
                        '#'
                    }
                })
                .collect();
            println!("  {line}");
        }
    }
}
