//! # mf-des — deterministic discrete-event simulation core
//!
//! The heterogeneous CPU-GPU experiments in this workspace run in **virtual
//! time**: every device (a CPU worker thread, a GPU) performs real SGD
//! arithmetic, but the *duration* of each unit of work comes from a
//! calibrated performance model. This crate provides the simulation
//! machinery those experiments are built on:
//!
//! * [`SimTime`] — a totally ordered, finite wrapper around `f64` seconds.
//! * [`EventQueue`] — a priority queue of `(time, payload)` pairs with
//!   stable FIFO tie-breaking, so simulations are deterministic even when
//!   many events share a timestamp.
//! * [`Clock`] — a monotone virtual clock.
//! * [`Engine`] — a convenience driver that pops events in order and hands
//!   them to a handler until the queue drains or a horizon is reached.
//! * [`ScriptedSource`] — a replayable stream of *external* events keyed
//!   by an arbitrary progress notion (virtual time, completed passes),
//!   used to inject scripted faults identically into any execution world.
//!
//! The design goal is determinism: given the same inputs, a simulation
//! produces bit-identical results on every run. That is what makes the
//! reproduction experiments in `hsgd-core` testable.
//!
//! ```
//! use mf_des::{Engine, SimTime};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule(SimTime::from_secs(2.0), "second");
//! engine.schedule(SimTime::from_secs(1.0), "first");
//! let mut order = Vec::new();
//! engine.run(|_now, ev, _eng| order.push(ev));
//! assert_eq!(order, vec!["first", "second"]);
//! ```

mod clock;
mod engine;
mod queue;
mod source;
mod time;

pub use clock::Clock;
pub use engine::{Engine, EngineHandle};
pub use queue::{EventQueue, ScheduledEvent};
pub use source::{EventSource, ScriptedSource};
pub use time::SimTime;
