//! Table II — comparison of cost models: workload proportions and running
//! time of HSGD\*-Q (Qilin's linear model) vs HSGD\*-M (the paper's
//! model), both without dynamic scheduling, for the same number of
//! iterations (20 in the paper).
//!
//! The claims to check: the two models split the workload differently
//! (most visibly on the small dataset, where the tailored model respects
//! Observation 1), and HSGD\*-M's split yields the lower running time.

use hsgd_core::{experiments, Algorithm};
use mf_bench::{fmt_secs, print_table, BenchArgs};
use mf_data::PresetName;

fn main() {
    let args = BenchArgs::parse();
    let mut prop_rows = Vec::new();
    let mut time_rows = Vec::new();

    for name in PresetName::all() {
        let (p, ds) = args.dataset(name);
        let cfg = args.rig(&p, args.scale_for(name));

        let q = experiments::run(Algorithm::HsgdStarQ, &ds.train, &ds.test, &cfg).report;
        let m = experiments::run(Algorithm::HsgdStarM, &ds.train, &ds.test, &cfg).report;

        let aq = q.alpha_planned.unwrap_or(0.0);
        let am = m.alpha_planned.unwrap_or(0.0);
        prop_rows.push(vec![
            name.label().to_string(),
            format!("{:.2}%", (1.0 - aq) * 100.0),
            format!("{:.2}%", aq * 100.0),
            format!("{:.2}%", (1.0 - am) * 100.0),
            format!("{:.2}%", am * 100.0),
        ]);
        time_rows.push(vec![
            name.label().to_string(),
            fmt_secs(q.virtual_secs),
            fmt_secs(m.virtual_secs),
            format!("{:+.1}%", (m.virtual_secs / q.virtual_secs - 1.0) * 100.0),
        ]);
    }

    print_table(
        &format!(
            "Table II (top) — workload proportion by cost model ({} iterations)",
            args.iterations
        ),
        &["dataset", "Q: C", "Q: G", "M: C", "M: G"],
        &prop_rows,
    );
    print_table(
        "Table II (bottom) — running time by cost model",
        &["dataset", "HSGD*-Q", "HSGD*-M", "M vs Q"],
        &time_rows,
    );
}
