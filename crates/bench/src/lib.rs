//! # mf-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Sec. VII); see
//! the README's "Reproducing the paper's figures and tables" section for
//! the index. All binaries share the conventions here:
//!
//! * Datasets are the Table I synthetic stand-ins at `1/scale` size, with
//!   the virtual devices' knees and latencies scaled by the same factor so
//!   block sizes land on the same region of every performance curve as a
//!   full-scale run (see `GpuSpec::scaled_down`).
//! * Default scales per dataset keep the item dimension comfortably above
//!   the grid's column-band count; `--scale` overrides all of them.
//! * Output is aligned plain text — the same rows/series the paper plots.
//!
//! Common flags: `--scale N`, `--k N`, `--iters N`, `--seed N`, `--nc N`,
//! `--ng N`, `--workers N`, `--quick` (tiny sizes for smoke tests).

use hsgd_core::{CpuSpec, HeteroConfig};
use mf_data::{preset, Dataset, DatasetPreset, PresetName};
use mf_sgd::{HyperParams, LearningRate};

pub mod hotpath;

/// Parsed command-line options shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Override the per-dataset default scale.
    pub scale: Option<u64>,
    /// Latent dimension (default 16; the paper uses 128 — larger `k`
    /// changes wall-clock cost, not the scheduling behaviour under study).
    pub k: usize,
    /// Training iterations (default 20, matching Table II's protocol).
    pub iterations: u32,
    /// Master seed.
    pub seed: u64,
    /// CPU worker threads (paper default 16).
    pub nc: usize,
    /// Whether `--nc` was passed explicitly (vs the default): lets
    /// binaries that would otherwise auto-size real-thread runs honor an
    /// explicit request even when it equals the default.
    pub nc_from_cli: bool,
    /// GPU count (paper default 1).
    pub ng: usize,
    /// GPU parallel workers (paper default 128).
    pub workers: u32,
    /// Shrink everything for a fast smoke run.
    pub quick: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            scale: None,
            k: 16,
            iterations: 20,
            seed: 42,
            nc: 16,
            nc_from_cli: false,
            ng: 1,
            workers: 128,
            quick: false,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, panicking with a usage message on bad
    /// input (these are experiment drivers, not user-facing tools).
    pub fn parse() -> BenchArgs {
        let mut out = BenchArgs::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let mut take = |out: &mut String| {
                i += 1;
                *out = args
                    .get(i)
                    .unwrap_or_else(|| panic!("flag {flag} needs a value"))
                    .clone();
            };
            let mut value = String::new();
            match flag {
                "--scale" => {
                    take(&mut value);
                    out.scale = Some(value.parse().expect("--scale: integer"));
                }
                "--k" => {
                    take(&mut value);
                    out.k = value.parse().expect("--k: integer");
                }
                "--iters" => {
                    take(&mut value);
                    out.iterations = value.parse().expect("--iters: integer");
                }
                "--seed" => {
                    take(&mut value);
                    out.seed = value.parse().expect("--seed: integer");
                }
                "--nc" => {
                    take(&mut value);
                    out.nc = value.parse().expect("--nc: integer");
                    out.nc_from_cli = true;
                }
                "--ng" => {
                    take(&mut value);
                    out.ng = value.parse().expect("--ng: integer");
                }
                "--workers" => {
                    take(&mut value);
                    out.workers = value.parse().expect("--workers: integer");
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => {
                    println!(
                        "flags: --scale N --k N --iters N --seed N --nc N --ng N --workers N --quick"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}"),
            }
            i += 1;
        }
        out
    }

    /// The default dataset scale for a preset: small enough to run in
    /// seconds, large enough that the item dimension dwarfs the grid's
    /// column bands.
    pub fn scale_for(&self, name: PresetName) -> u64 {
        if let Some(s) = self.scale {
            return s;
        }
        let base = match name {
            PresetName::MovieLens => 100,
            PresetName::Netflix => 50,
            PresetName::R1 => 100,
            PresetName::YahooMusic => 100,
        };
        if self.quick {
            base * 10
        } else {
            base
        }
    }

    /// Builds the preset and its dataset at this run's scale.
    pub fn dataset(&self, name: PresetName) -> (DatasetPreset, Dataset) {
        let p = preset(name, self.scale_for(name), self.seed);
        let ds = p.build();
        (p, ds)
    }

    /// The heterogeneous rig matching these args for a dataset at `scale`:
    /// device knees and latencies scaled with the data.
    pub fn rig(&self, p: &DatasetPreset, scale: u64) -> HeteroConfig {
        HeteroConfig {
            hyper: HyperParams {
                k: self.k,
                lambda_p: p.lambda_p,
                lambda_q: p.lambda_q,
                gamma: p.gamma,
                schedule: LearningRate::Fixed,
            },
            nc: self.nc,
            ng: self.ng,
            gpu: gpu_sim::GpuSpec::quadro_p4000()
                .with_workers(self.workers)
                .scaled_down(scale as f64),
            cpu: CpuSpec::default().scaled_down(scale as f64),
            iterations: self.iterations,
            seed: self.seed,
            dynamic_scheduling: true,
            cost_model: hsgd_core::CostModelKind::Tailored,
            probe_interval_secs: None,
            target_rmse: None,
        }
    }
}

/// Prints an aligned text table: a header row plus data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints an `(x, y)` series as two aligned columns.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("\n-- {title} --");
    println!("{:>14}  {:>14}", x_label, y_label);
    for &(x, y) in series {
        println!("{:>14.6}  {:>14.6}", x, y);
    }
}

/// Formats seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_keep_item_dimension_sane() {
        let args = BenchArgs::default();
        for name in PresetName::all() {
            let scale = args.scale_for(name);
            let p = preset(name, scale, 0);
            let cols = (args.nc + 2 * args.ng + 1) as u32;
            assert!(
                p.generator.num_items >= 8 * cols,
                "{name:?} at scale {scale}: n = {} too small for {cols} column bands",
                p.generator.num_items
            );
        }
    }

    #[test]
    fn rig_matches_args() {
        let args = BenchArgs {
            k: 8,
            workers: 256,
            nc: 4,
            ..Default::default()
        };
        let (p, _) = args.dataset(PresetName::MovieLens);
        let cfg = args.rig(&p, 100);
        assert_eq!(cfg.hyper.k, 8);
        assert_eq!(cfg.gpu.parallel_workers, 256);
        assert_eq!(cfg.nc, 4);
        assert_eq!(cfg.hyper.gamma, p.gamma);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(2.5), "2.500s");
        assert_eq!(fmt_secs(0.0025), "2.500ms");
        assert_eq!(fmt_secs(2.5e-6), "2.5µs");
    }
}
