//! Quality regression guard for the hot-path overhaul (monomorphized
//! kernels + pool-based O(log B) scheduling + user-major block layout).
//!
//! Training quality must not depend on *how fast* the scheduler picks
//! blocks or on the kernel's summation association order: with fixed
//! seeds, FPSGD (real threads) and the virtual-time CPU-Only/HSGD runs
//! must still converge to the same RMSE band on the planted low-rank
//! generator that the pre-overhaul code reached, and the capped
//! scheduler's per-block pass counts must stay exactly level.

use hsgd_star::data::{generator, GeneratorConfig};
use hsgd_star::hetero::{experiments, Algorithm, CpuSpec, HeteroConfig};
use hsgd_star::sgd::sequential::TrainConfig;
use hsgd_star::sgd::{eval, fpsgd, HyperParams, LearningRate};

fn dataset(seed: u64) -> generator::Dataset {
    generator::generate(&GeneratorConfig {
        name: "hotpath".into(),
        num_users: 400,
        num_items: 300,
        num_train: 24_000,
        num_test: 2_400,
        planted_rank: 4,
        noise_std: 0.3,
        rating_min: 1.0,
        rating_max: 5.0,
        user_skew: 0.5,
        item_skew: 0.5,
        seed,
    })
}

fn hyper(k: usize) -> HyperParams {
    HyperParams {
        k,
        lambda_p: 0.05,
        lambda_q: 0.05,
        gamma: 0.02,
        schedule: LearningRate::Fixed,
    }
}

/// FPSGD on real threads: pinned seed, monomorphized k, user-major
/// blocks, pool scheduler — quality must land in the pre-overhaul band
/// (noise floor 0.3; this setup converges to ≈0.36).
#[test]
fn fpsgd_quality_unchanged_by_hotpath_overhaul() {
    let ds = dataset(41);
    for threads in [1usize, 4] {
        let cfg = fpsgd::FpsgdConfig {
            train: TrainConfig {
                hyper: hyper(8),
                iterations: 40,
                seed: 5,
                reshuffle: true,
            },
            threads,
            grid: None,
        };
        let (model, report) = fpsgd::train_with_report(&ds.train, &cfg);
        let rmse = eval::rmse(&model, &ds.test);
        // One thread is deterministic → tight band. Multi-threaded FPSGD
        // quality drifts with OS scheduling on an oversubscribed 1-core
        // host (same effect the end_to_end suite's band accounts for), so
        // that case gets headroom.
        let band = if threads == 1 { 0.40 } else { 0.45 };
        assert!(
            rmse < band,
            "fpsgd({threads} threads) regressed: rmse {rmse} (band {band})"
        );
        // The exact-cap discipline survives the pool rewrite.
        assert!(report.update_counts.iter().all(|&c| c == 40));
    }
}

/// The monomorphized fast path (k = 16 ∈ MONO_DIMS) reaches the same
/// quality as a neighboring scalar-path dimension (k = 12): dispatch must
/// not change what is computed, only how fast.
#[test]
fn mono_and_scalar_dims_reach_same_quality() {
    let ds = dataset(43);
    let run = |k: usize| {
        let cfg = fpsgd::FpsgdConfig {
            train: TrainConfig {
                hyper: hyper(k),
                iterations: 40,
                seed: 9,
                reshuffle: true,
            },
            threads: 2,
            grid: None,
        };
        eval::rmse(&fpsgd::train(&ds.train, &cfg), &ds.test)
    };
    let mono = run(16);
    let scalar = run(12);
    assert!(mono < 0.40, "k=16 (mono path) rmse {mono}");
    assert!(scalar < 0.40, "k=12 (scalar path) rmse {scalar}");
    assert!(
        (mono - scalar).abs() < 0.05,
        "paths diverged: mono {mono} vs scalar {scalar}"
    );
}

/// Virtual-time runs (pool-backed UniformScheduler, user-major partition):
/// CPU-Only and HSGD stay deterministic in the seed and inside the
/// pre-overhaul quality band.
#[test]
fn virtual_trainers_quality_and_determinism_unchanged() {
    let ds = dataset(47);
    let cfg = HeteroConfig {
        hyper: hyper(8),
        nc: 4,
        ng: 1,
        gpu: hsgd_star::gpu::GpuSpec::quadro_p4000().scaled_down(500.0),
        cpu: CpuSpec::default().scaled_down(500.0),
        iterations: 25,
        seed: 13,
        dynamic_scheduling: true,
        cost_model: hsgd_star::hetero::CostModelKind::Tailored,
        probe_interval_secs: None,
        target_rmse: None,
    };
    for alg in [Algorithm::CpuOnly, Algorithm::Hsgd] {
        let a = experiments::run(alg, &ds.train, &ds.test, &cfg);
        let b = experiments::run(alg, &ds.train, &ds.test, &cfg);
        assert_eq!(a.model, b.model, "{alg:?} lost bit-determinism");
        assert!(
            a.report.final_test_rmse < 0.45,
            "{alg:?} regressed: rmse {}",
            a.report.final_test_rmse
        );
    }
}
